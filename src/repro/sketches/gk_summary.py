"""Greenwald–Khanna ε-approximate quantile summary.

Greenwald and Khanna's sensor-network algorithm (cited by the paper as the
concurrent result [4]) aggregates per-node quantile summaries up the spanning
tree; any order statistic can then be answered from the root's summary with
rank error at most εN.  This module implements the summary itself: insertion,
pruning to the O((1/ε) log εN) size bound, merging (errors add), and quantile
queries.  The distributed baseline in :mod:`repro.baselines.gk_median` ships
these summaries over the tree, which is what costs Θ((log N)³)–Θ((log N)⁴)
bits per node and provides the comparison line for experiment E8.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable

from repro._util.bits import fixed_width_bits
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class _Tuple:
    """A GK summary tuple (value, g, delta)."""

    value: int
    g: int
    delta: int


@dataclass
class GKSummary:
    """An ε-approximate quantile summary over integer values."""

    epsilon: float
    count: int = 0
    tuples: list[_Tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must lie in (0, 1), got {self.epsilon}"
            )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Iterable[int], epsilon: float) -> "GKSummary":
        summary = cls(epsilon=epsilon)
        for value in values:
            summary.insert(value)
        summary.compress()
        return summary

    @property
    def capacity(self) -> int:
        """Maximum number of stored tuples: O(1/ε)."""
        return max(4, math.ceil(3.0 / self.epsilon))

    def insert(self, value: int) -> None:
        """Insert one observation."""
        new_tuple = _Tuple(value=value, g=1, delta=0)
        index = bisect_right([t.value for t in self.tuples], value)
        self.tuples.insert(index, new_tuple)
        self.count += 1
        # Periodic compression keeps the summary small without paying the
        # pruning cost on every insert.
        if len(self.tuples) > 2 * self.capacity:
            self.compress()

    def compress(self) -> None:
        """Greedily merge the lightest adjacent tuples until the size bound holds.

        Merging an adjacent pair of total weight ``w`` perturbs ranks by at
        most ``w``; merging the lightest pairs first and capping the summary at
        ``O(1/ε)`` tuples keeps the cumulative rank error of a query at
        ``O(ε · count)``, which is the property the GK baseline needs.  (This
        is the capacity-bounded variant of the GK compress operation — simpler
        than the original band structure but with the same asymptotic size.)
        """
        capacity = self.capacity
        while len(self.tuples) > capacity and len(self.tuples) > 2:
            lightest_index = 1
            lightest_weight = None
            for index in range(1, len(self.tuples)):
                weight = self.tuples[index - 1].g + self.tuples[index].g
                if lightest_weight is None or weight < lightest_weight:
                    lightest_weight = weight
                    lightest_index = index
            left = self.tuples[lightest_index - 1]
            right = self.tuples[lightest_index]
            merged = _Tuple(
                value=right.value,
                g=left.g + right.g,
                delta=max(left.delta, right.delta),
            )
            self.tuples[lightest_index - 1 : lightest_index + 1] = [merged]

    # ------------------------------------------------------------------ #
    # Combination and queries
    # ------------------------------------------------------------------ #
    def merge(self, other: "GKSummary") -> "GKSummary":
        """Merge two summaries; the resulting error is the larger ε of the two.

        The standard merge concatenates the tuple lists in value order, keeps
        g values and inflates deltas; compressing afterwards restores the size
        bound.  Rank error grows to ε₁ + ε₂ in the worst case, which the
        distributed baseline accounts for by building per-node summaries with
        ε / depth.
        """
        merged = GKSummary(epsilon=max(self.epsilon, other.epsilon))
        merged.count = self.count + other.count
        merged.tuples = sorted(
            list(self.tuples) + list(other.tuples), key=lambda t: t.value
        )
        merged.compress()
        return merged

    def rank_bounds(self, value: int) -> tuple[int, int]:
        """Return (min_rank, max_rank) bounds of ``value`` in the summarised multiset."""
        min_rank = 0
        max_rank = 0
        for t in self.tuples:
            if t.value <= value:
                min_rank += t.g
                max_rank = min_rank + t.delta
        return min_rank, max_rank

    def query(self, quantile: float) -> int:
        """Return a value whose rank is within εN of ``quantile * N``."""
        if not 0.0 <= quantile <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {quantile}")
        if not self.tuples:
            raise ConfigurationError("cannot query an empty summary")
        target = quantile * self.count
        cumulative = 0
        for t in self.tuples:
            cumulative += t.g
            if cumulative >= target:
                return t.value
        return self.tuples[-1].value

    def median(self) -> int:
        """Convenience wrapper for the 0.5 quantile."""
        return self.query(0.5)

    @property
    def size(self) -> int:
        """Number of stored tuples."""
        return len(self.tuples)

    def serialized_bits(self, max_value: int, max_count: int) -> int:
        """Bits to transmit the summary over a tree edge."""
        per_tuple = (
            fixed_width_bits(max_value)
            + fixed_width_bits(max_count)
            + fixed_width_bits(max_count)
        )
        return len(self.tuples) * per_tuple + fixed_width_bits(max_count)
