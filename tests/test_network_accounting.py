"""Tests for the communication ledger."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.network.accounting import CommunicationLedger, NodeTraffic


class TestNodeTraffic:
    def test_bits_total(self):
        traffic = NodeTraffic(bits_sent=10, bits_received=7)
        assert traffic.bits_total == 17

    def test_merge(self):
        a = NodeTraffic(bits_sent=1, bits_received=2, messages_sent=1, messages_received=1)
        b = NodeTraffic(bits_sent=3, bits_received=4, messages_sent=2, messages_received=2)
        a.merge(b)
        assert (a.bits_sent, a.bits_received) == (4, 6)
        assert (a.messages_sent, a.messages_received) == (3, 3)


class TestCharging:
    def test_single_charge_counts_both_endpoints(self):
        ledger = CommunicationLedger()
        ledger.charge(1, 2, 100, protocol="X")
        assert ledger.traffic(1).bits_sent == 100
        assert ledger.traffic(2).bits_received == 100
        assert ledger.node_bits(1) == 100
        assert ledger.node_bits(2) == 100
        assert ledger.total_messages == 1

    def test_max_node_bits_is_individual_measure(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 10)
        ledger.charge(0, 2, 10)
        ledger.charge(0, 3, 10)
        # node 0 sent 30 bits; every receiver saw only 10.
        assert ledger.max_node_bits == 30

    def test_total_bits_counts_each_transmission_once(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 10)
        ledger.charge(1, 0, 5)
        assert ledger.total_bits == 15

    def test_per_protocol_breakdown(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 10, protocol="COUNT")
        ledger.charge(1, 2, 20, protocol="COUNT")
        ledger.charge(2, 3, 5, protocol="MIN")
        assert ledger.per_protocol_bits() == {"COUNT": 30, "MIN": 5}

    def test_zero_size_message_allowed(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 0)
        assert ledger.max_node_bits == 0
        assert ledger.total_messages == 1

    def test_negative_size_rejected(self):
        ledger = CommunicationLedger()
        with pytest.raises(Exception):
            ledger.charge(0, 1, -5)

    def test_rounds(self):
        ledger = CommunicationLedger()
        ledger.advance_round()
        ledger.advance_round(4)
        assert ledger.rounds == 5

    def test_empty_ledger_defaults(self):
        ledger = CommunicationLedger()
        assert ledger.max_node_bits == 0
        assert ledger.total_bits == 0
        assert list(ledger.nodes()) == []


class TestSnapshotResetMerge:
    def test_snapshot_is_immutable_copy(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 8)
        snap = ledger.snapshot()
        ledger.charge(0, 1, 8)
        assert snap.total_bits == 8
        assert snap.max_node_bits == 8
        assert ledger.total_bits == 16

    def test_reset_clears_everything(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 8, protocol="X")
        ledger.advance_round()
        ledger.reset()
        assert ledger.total_bits == 0
        assert ledger.rounds == 0
        assert ledger.per_protocol_bits() == {}

    def test_merge_accumulates(self):
        a = CommunicationLedger()
        b = CommunicationLedger()
        a.charge(0, 1, 10, protocol="X")
        b.charge(1, 2, 20, protocol="X")
        b.advance_round(2)
        a.merge(b)
        assert a.total_bits == 30
        assert a.node_bits(1) == 30
        assert a.rounds == 2


class TestBudget:
    def test_budget_enforced(self):
        ledger = CommunicationLedger(per_node_budget_bits=50)
        ledger.charge(0, 1, 30)
        with pytest.raises(BudgetExceededError):
            ledger.charge(0, 1, 30)

    def test_budget_applies_to_receiver_too(self):
        ledger = CommunicationLedger(per_node_budget_bits=50)
        ledger.charge(0, 1, 40)
        with pytest.raises(BudgetExceededError):
            ledger.charge(2, 1, 40)

    def test_budget_survives_reset(self):
        ledger = CommunicationLedger(per_node_budget_bits=10)
        with pytest.raises(BudgetExceededError):
            ledger.charge(0, 1, 20)
        ledger.reset()
        with pytest.raises(BudgetExceededError):
            ledger.charge(0, 1, 20)
