"""Workload generators: one-shot snapshots and time-evolving streams.

* :mod:`repro.workloads.generators` — single-snapshot value distributions
  used by the one-shot protocols' tests, examples and benchmarks.
* :mod:`repro.workloads.streams` — stateful per-epoch update processes
  (drift, burst, churn, seasonal) that drive the continuous-query engine in
  :mod:`repro.streaming`.
* :mod:`repro.workloads.faults` — deterministic failure scenarios (crash
  storms, correlated regional outages, churn with rejoin, link storms) as
  :class:`~repro.faults.FaultScript` builders for the fault engine.
"""

from repro.workloads.generators import (
    WORKLOAD_GENERATORS,
    adversarial_near_median_values,
    all_equal_values,
    bimodal_values,
    clustered_values,
    correlated_field_values,
    generate_workload,
    sequential_values,
    uniform_values,
    zipf_values,
)
from repro.workloads.faults import (
    FAULT_SCENARIOS,
    churn_script,
    crash_storm_script,
    link_storm_script,
    regional_outage_script,
    root_failover_script,
    storm_under_churn_script,
)
from repro.workloads.streams import (
    STREAM_WORKLOADS,
    BurstStream,
    ChurnStream,
    DriftStream,
    SeasonalStream,
    StreamWorkload,
    make_stream,
)

__all__ = [
    "WORKLOAD_GENERATORS",
    "adversarial_near_median_values",
    "all_equal_values",
    "bimodal_values",
    "clustered_values",
    "correlated_field_values",
    "generate_workload",
    "sequential_values",
    "uniform_values",
    "zipf_values",
    "STREAM_WORKLOADS",
    "StreamWorkload",
    "DriftStream",
    "BurstStream",
    "ChurnStream",
    "SeasonalStream",
    "make_stream",
    "FAULT_SCENARIOS",
    "crash_storm_script",
    "regional_outage_script",
    "churn_script",
    "link_storm_script",
    "storm_under_churn_script",
    "root_failover_script",
]
