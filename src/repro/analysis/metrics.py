"""Measurement records and growth-rate analysis.

The paper's claims are asymptotic ("O((log N)^2) bits per node"), so the
reproduction's job is to show that the *measured* per-node communication grows
like the claimed function of N.  :func:`fit_against_model` fits the measured
cost to ``c · f(N)`` by least squares and reports the residual spread of the
ratio ``measured / f(N)``; a flat ratio (small spread) means the model
explains the growth.  :func:`fit_growth_exponent` fits a power law
``c · N^p`` in log-log space, which is how the linear behaviour of exact
COUNT DISTINCT (p ≈ 1) is distinguished from the polylog protocols (p ≈ 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.definitions import rank
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RunRecord:
    """One protocol execution in a sweep."""

    protocol: str
    workload: str
    topology: str
    num_nodes: int
    num_items: int
    domain_max: int
    answer: float
    true_median: float | None
    max_node_bits: int
    total_bits: int
    messages: int
    rounds: int
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MedianAccuracy:
    """Rank and value error of a median estimate (the α and β of Definition 2.4)."""

    rank_error: float
    value_error: float
    exact: bool


def median_accuracy(items: Sequence[int], estimate: float) -> MedianAccuracy:
    """Measure how far ``estimate`` is from being the exact median of ``items``.

    ``rank_error`` is ``|ℓ(estimate) − N/2| / (N/2)`` — the empirical α.
    ``value_error`` is ``|estimate − nearest exact median| / max(items)`` — the
    empirical β.
    """
    if not items:
        raise ConfigurationError("cannot measure accuracy against an empty multiset")
    n = len(items)
    half = n / 2.0
    estimate_rank = rank(items, estimate) + 0.5 * sum(
        1 for item in items if item == estimate
    )
    rank_error = abs(estimate_rank - half) / half if half else 0.0
    ordered = sorted(items)
    exact_median = ordered[max(0, math.ceil(half) - 1)]
    max_item = max(items)
    value_error = abs(estimate - exact_median) / max_item if max_item else 0.0
    from repro.core.definitions import is_median  # local import to avoid cycle at module load

    return MedianAccuracy(
        rank_error=rank_error,
        value_error=value_error,
        exact=is_median(items, estimate),
    )


def fit_growth_exponent(
    sizes: Sequence[float], costs: Sequence[float]
) -> tuple[float, float]:
    """Fit ``cost ≈ c · size^p`` by least squares in log-log space.

    Returns ``(p, c)``.  Used to distinguish linear growth (exact
    COUNT DISTINCT, naive median: p ≈ 1) from polylogarithmic growth
    (p ≈ 0 with slowly growing residuals).
    """
    if len(sizes) != len(costs) or len(sizes) < 2:
        raise ConfigurationError("need at least two (size, cost) pairs")
    if any(size <= 0 for size in sizes) or any(cost <= 0 for cost in costs):
        raise ConfigurationError("sizes and costs must be positive for a log-log fit")
    log_sizes = [math.log(size) for size in sizes]
    log_costs = [math.log(cost) for cost in costs]
    n = len(sizes)
    mean_x = sum(log_sizes) / n
    mean_y = sum(log_costs) / n
    sxx = sum((x - mean_x) ** 2 for x in log_sizes)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_sizes, log_costs))
    exponent = sxy / sxx if sxx else 0.0
    constant = math.exp(mean_y - exponent * mean_x)
    return exponent, constant


def fit_against_model(
    sizes: Sequence[float],
    costs: Sequence[float],
    model: Callable[[float], float],
) -> tuple[float, float]:
    """Fit ``cost ≈ c · model(size)`` and report ``(c, ratio_spread)``.

    ``ratio_spread`` is ``max(ratio) / min(ratio)`` where
    ``ratio = cost / model(size)``: a value close to 1 means the model tracks
    the measurements across the whole sweep; a large value means the model has
    the wrong growth rate.
    """
    if len(sizes) != len(costs) or not sizes:
        raise ConfigurationError("need matching, non-empty size and cost sequences")
    ratios = []
    for size, cost in zip(sizes, costs):
        predicted = model(size)
        if predicted <= 0:
            raise ConfigurationError(f"model returned a non-positive value at {size}")
        ratios.append(cost / predicted)
    constant = sum(ratios) / len(ratios)
    positive = [ratio for ratio in ratios if ratio > 0]
    spread = (max(positive) / min(positive)) if positive else float("inf")
    return constant, spread
