"""Re-export of the predicate types used by the core algorithms.

The predicate implementations live next to the COUNTP protocol in
:mod:`repro.protocols.predicates`; they are re-exported here because they are
part of the paper's core machinery (Section 3.1) and callers of the core API
frequently need to construct them.
"""

from repro.protocols.predicates import (
    AllItemsPredicate,
    LessThanPredicate,
    PowerThresholdPredicate,
    Predicate,
    RangePredicate,
)

__all__ = [
    "AllItemsPredicate",
    "LessThanPredicate",
    "PowerThresholdPredicate",
    "Predicate",
    "RangePredicate",
]
