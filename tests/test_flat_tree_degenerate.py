"""FlatTree on degenerate topologies, and fail-fast invariant validation."""

import pytest

from repro.exceptions import TopologyError
from repro.network.flat_tree import FlatTree
from repro.network.simulator import SensorNetwork
from repro.network.spanning_tree import SpanningTree, bfs_tree, tree_from_parents
from repro.network.topology import line_topology, star_topology


def line_tree(num_nodes):
    return bfs_tree(line_topology(num_nodes), root=0)


def star_tree(num_nodes):
    return bfs_tree(star_topology(num_nodes), root=0)


class TestSingleNode:
    def test_arrays(self):
        flat = FlatTree.from_spanning_tree(line_tree(1))
        assert flat.num_nodes == 1
        assert flat.height == 0
        assert flat.node_ids == [0]
        assert flat.parent == [-1]
        assert flat.depth == [0]
        assert flat.children_of(0) == []
        assert flat.level_spans == [(0, 1)]
        assert flat.up_links == [] and flat.down_links == []

    def test_orders(self):
        flat = FlatTree.from_spanning_tree(line_tree(1))
        assert list(flat.nodes_bottom_up()) == [0]
        assert flat.nodes_top_down() == [0]
        assert flat.parent_id(0) is None


class TestDeepPath:
    """A path graph: the tree is a chain of height n - 1."""

    N = 40

    def test_shape(self):
        flat = FlatTree.from_spanning_tree(line_tree(self.N))
        assert flat.height == self.N - 1
        assert flat.num_nodes == self.N
        # Every level holds exactly one node.
        assert flat.level_spans == [(i, i + 1) for i in range(self.N)]
        # Each node's only child is the next node down the chain.
        for position in range(self.N - 1):
            assert flat.children_of(position) == [position + 1]
        assert flat.children_of(self.N - 1) == []

    def test_orders_match_spanning_tree(self):
        tree = line_tree(self.N)
        flat = FlatTree.from_spanning_tree(tree)
        assert list(flat.nodes_bottom_up()) == tree.nodes_bottom_up()
        assert flat.nodes_top_down() == tree.nodes_top_down()
        # Bottom-up must visit the deep end first, top-down the root first.
        assert next(iter(flat.nodes_bottom_up())) == self.N - 1
        assert flat.nodes_top_down()[0] == 0

    def test_link_sequences(self):
        flat = FlatTree.from_spanning_tree(line_tree(self.N))
        assert flat.up_links == [(i, i - 1) for i in range(self.N - 1, 0, -1)]
        assert flat.down_links == [(i, i + 1) for i in range(self.N - 1)]


class TestStar:
    """A star: the root has n - 1 children, height 1."""

    N = 33

    def test_shape(self):
        flat = FlatTree.from_spanning_tree(star_tree(self.N))
        assert flat.height == 1
        assert flat.level_spans == [(0, 1), (1, self.N)]
        assert flat.children_of(0) == list(range(1, self.N))
        assert all(flat.parent[i] == 0 for i in range(1, self.N))

    def test_orders(self):
        tree = star_tree(self.N)
        flat = FlatTree.from_spanning_tree(tree)
        bottom_up = list(flat.nodes_bottom_up())
        assert bottom_up == tree.nodes_bottom_up()
        assert bottom_up[-1] == 0  # the root combines last
        assert flat.nodes_top_down()[0] == 0

    def test_batched_protocols_run(self):
        # End to end: a degenerate topology through the batched sweeps.
        from repro.protocols.broadcast import broadcast
        from repro.protocols.convergecast import convergecast

        network = SensorNetwork.from_items(
            list(range(1, self.N + 1)), topology="star", degree_bound=None
        )
        broadcast(network, "q", 8, protocol="req")
        total = convergecast(
            network,
            local_value=lambda node: sum(node.items),
            combine=lambda a, b: a + b,
            size_bits=16,
            protocol="sum",
        )
        assert total == self.N * (self.N + 1) // 2


class TestFailFastValidation:
    """from_spanning_tree must reject malformed trees (satellite of PR 3)."""

    def test_valid_tree_passes(self):
        tree = line_tree(5)
        tree.check_invariants()
        assert FlatTree.from_spanning_tree(tree).num_nodes == 5

    def test_child_list_mismatch(self):
        tree = line_tree(5)
        tree.children[1].remove(2)  # 2's parent still claims 1
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_duplicate_child_entry(self):
        tree = star_tree(4)
        tree.children[1].append(2)  # 2 now appears under 0 and 1
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_depth_inconsistency(self):
        tree = line_tree(5)
        tree.depth[3] = 7
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_root_with_parent(self):
        tree = line_tree(3)
        tree.parent[0] = 2
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_key_set_mismatch(self):
        tree = line_tree(3)
        del tree.depth[2]
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_cycle_is_rejected(self):
        parent = {0: None, 1: 0, 2: 3, 3: 2}
        children = {0: [1], 1: [], 2: [3], 3: [2]}
        depth = {0: 0, 1: 1, 2: 1, 3: 2}
        tree = SpanningTree(root=0, parent=parent, children=children, depth=depth)
        with pytest.raises(TopologyError):
            FlatTree.from_spanning_tree(tree)

    def test_tree_from_parents_rejects_disconnection(self):
        with pytest.raises(TopologyError):
            tree_from_parents(0, {0: None, 1: 0, 2: None})

    def test_network_flat_tree_property_validates(self):
        network = SensorNetwork.from_items([1] * 9, topology="grid")
        network.tree.children[network.root_id].clear()  # corrupt in place
        with pytest.raises(TopologyError):
            _ = network.flat_tree


class TestRewire:
    """The incremental re-span must be indistinguishable from a rebuild."""

    SLOTS = (
        "root_id",
        "num_nodes",
        "height",
        "index",
        "up_links",
        "down_links",
    )

    def assert_matches_scratch(self, rewired, patched_tree):
        scratch = FlatTree.from_spanning_tree(patched_tree)
        for slot in self.SLOTS:
            assert getattr(rewired, slot) == getattr(scratch, slot), slot
        # Structural arrays compared representation-independently (they are
        # int64 buffers under numpy, plain lists without it).
        assert rewired.to_lists() == scratch.to_lists()

    def patch(self, tree, removed=(), reparented=None):
        """Apply a patch to a parent map and return the rebuilt SpanningTree."""
        parent = dict(tree.parent)
        for node in removed:
            del parent[node]
        for node, new_parent in (reparented or {}).items():
            parent[node] = new_parent
        return tree_from_parents(tree.root, parent)

    def moved_depths(self, patched, nodes):
        depths = {}
        stack = list(nodes)
        seen = set()
        while stack:
            node = stack.pop()
            if node in seen or node not in patched.parent:
                continue
            seen.add(node)
            depths[node] = patched.depth[node]
            stack.extend(patched.children[node])
        return depths

    def test_leaf_removal(self):
        tree = line_tree(8)
        patched = self.patch(tree, removed=[7])
        rewired = FlatTree.from_spanning_tree(tree).rewire(removed={7})
        self.assert_matches_scratch(rewired, patched)

    def test_subtree_reparent_changes_every_member_depth(self):
        tree = star_tree(6)
        # hang node 5 below node 1 instead of the hub
        patched = self.patch(tree, reparented={5: 1})
        rewired = FlatTree.from_spanning_tree(tree).rewire(
            reparented={5: 1}, depths=self.moved_depths(patched, [5])
        )
        self.assert_matches_scratch(rewired, patched)

    def test_node_addition(self):
        tree = line_tree(6)
        parent = dict(tree.parent)
        parent[99] = 2
        patched = tree_from_parents(0, parent)
        rewired = FlatTree.from_spanning_tree(tree).rewire(
            reparented={99: 2}, depths={99: patched.depth[99]}
        )
        self.assert_matches_scratch(rewired, patched)

    def test_reparent_requires_depth(self):
        from repro.exceptions import ConfigurationError

        flat = FlatTree.from_spanning_tree(line_tree(5))
        with pytest.raises(ConfigurationError):
            flat.rewire(reparented={3: 0})

    def test_root_cannot_move(self):
        from repro.exceptions import ConfigurationError

        flat = FlatTree.from_spanning_tree(line_tree(5))
        with pytest.raises(ConfigurationError):
            flat.rewire(reparented={0: 1}, depths={0: 1})

    def test_removed_and_depths_must_not_overlap(self):
        from repro.exceptions import ConfigurationError

        flat = FlatTree.from_spanning_tree(line_tree(5))
        with pytest.raises(ConfigurationError):
            flat.rewire(removed={3}, reparented={3: 0}, depths={3: 1})

    def test_python_and_numpy_paths_agree(self, monkeypatch):
        import random

        import repro.network.flat_tree as flat_tree_module

        if flat_tree_module._np is None:
            pytest.skip("numpy unavailable; only the pure path exists")
        rng = random.Random(7)
        from repro.network.topology import build_topology

        graph = build_topology("random_geometric", 60, seed=3)
        tree = bfs_tree(graph, root=0)
        flat = FlatTree.from_spanning_tree(tree)
        # remove two leaves, re-hang one subtree under the root
        leaves = [n for n in tree.parent if not tree.children[n]]
        removed = set(rng.sample(leaves, 2))
        mover = next(
            n
            for n in tree.nodes_top_down()
            if tree.parent[n] not in (None, 0) and n not in removed
        )
        patched = self.patch(tree, removed=removed, reparented={mover: 0})
        depths = self.moved_depths(patched, [mover])

        monkeypatch.setattr(flat_tree_module, "_NUMPY_REWIRE_MIN_NODES", 0)
        vectorised = flat.rewire(
            removed=removed, reparented={mover: 0}, depths=depths
        )
        monkeypatch.setattr(flat_tree_module, "_np", None)
        pure = flat.rewire(removed=removed, reparented={mover: 0}, depths=depths)
        for slot in self.SLOTS:
            assert getattr(vectorised, slot) == getattr(pure, slot), slot
        self.assert_matches_scratch(vectorised, patched)
