#!/usr/bin/env python
"""Diagnose a telemetry JSONL trace: flag anomalous epochs, print *why*.

Usage::

    python scripts/diagnose.py TELEMETRY_faults.jsonl
    python scripts/diagnose.py TELEMETRY_faults.jsonl --strict
    python scripts/diagnose.py TELEMETRY_faults.jsonl --json

Runs :func:`repro.telemetry.diagnose` over the trace: per-epoch series
(bits, detection latency) go through a rolling median/MAD anomaly
detector, and each flagged epoch's causal chain is walked backwards
through the flight-recorder events to a root cause::

    epoch 6: bits 3035 (baseline 0, 262.8x MAD)
      RootCrash(node 0) at e6 -> election 0->35 at e6
      top hotspot: node 3 (255 bits, 4% of epoch node-bits)

Exit status: **2** for a missing, empty, or corrupt trace file; **1**
under ``--strict`` when any flagged epoch has *no* attributable cause
chain (the CI trajectory gate: a cost spike nothing in the flight ring
explains); **0** otherwise.  ``--json`` prints the machine-readable
verdict instead of the report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry import diagnose, read_jsonl, verdict  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Explain anomalous epochs of a telemetry JSONL trace."
    )
    parser.add_argument("trace", help="path to the telemetry JSONL file")
    parser.add_argument(
        "--window",
        type=int,
        default=5,
        help="trailing epochs the median/MAD baseline uses (default: 5)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=4.0,
        help="MAD multiples above baseline that flag an epoch (default: 4)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=3,
        help="epochs to look back for a cause event (default: 3)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any flagged epoch has no attributable cause chain",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the verdict dict as JSON instead of the report",
    )
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    try:
        records = list(read_jsonl(path))
    except json.JSONDecodeError as error:
        print(
            f"error: {path} is not valid JSONL (truncated write?): "
            f"line {error.lineno}: {error.msg}",
            file=sys.stderr,
        )
        return 2
    if not records:
        print(f"error: {path} is empty — no trace was written", file=sys.stderr)
        return 2

    diagnosis = diagnose(
        records,
        window=args.window,
        threshold=args.threshold,
        horizon=args.horizon,
    )
    if args.json:
        print(json.dumps(verdict(diagnosis), indent=2, sort_keys=True))
    else:
        print(diagnosis.render())
    if args.strict and diagnosis.unattributed:
        print(
            f"strict: {len(diagnosis.unattributed)} anomalous epoch(s) have "
            "no attributable cause chain",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
