"""Plain-text table formatting for the benchmark harness and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Numbers are formatted compactly (floats to three significant places);
    every other value is rendered with ``str``.
    """

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    rendered_rows = [[cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, text in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(text))
            else:
                widths.append(len(text))

    def line(parts: Sequence[str]) -> str:
        padded = [
            part.ljust(widths[index]) for index, part in enumerate(parts)
        ]
        return "  ".join(padded).rstrip()

    output = []
    if title:
        output.append(title)
        output.append("=" * len(title))
    output.append(line(list(headers)))
    output.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        output.append(line(row))
    return "\n".join(output)
