"""Subtree sharding: the multiprocessing backend of the vectorized engine.

``execution="sharded"`` partitions the field along the *root-adjacent cut*:
every child subtree of the root is an indivisible unit (all of a non-root
node's tree edges stay inside its unit, so a shard can sweep its slice with
no cross-shard traffic below the root), and units are packed into
``num_shards`` bins by longest-processing-time order on subtree size.  Each
worker process runs the same level-sweep kernel
(:func:`repro.streaming.vector_kernels.sweep_levels`) over its shard's
slice of the state columns, charging a **private**
:class:`~repro.network.CommunicationLedger`; the parent then

* scatters the updated columns back,
* folds the worker ledgers into one and applies a single
  :meth:`~repro.network.CommunicationLedger.merge` against the network
  ledger (the ``shard.merge`` telemetry span),
* plays the root's turn itself: shard tops transmitted to the root, so
  their delivered deltas arrive as one summed update.

Because per-node and per-protocol ledger counters are additive and rounds
are advanced once by the parent (one per swept level, the reference
schedule), the merged ledger is bit-for-bit identical to the single-process
batched sweep — the property ``benchmarks/bench_scale.py`` asserts at
n = 10,000.

Workers are plain ``multiprocessing`` fork workers created lazily and
reused across epochs; shard statics (positions, local parents, level spans)
ship once via the pool initializer, per-epoch tasks carry only the state
slices.  Set ``REPRO_SHARD_PROCESSES=0`` (or construct
``ShardRunner(processes=0)``) to run the shard tasks inline in-process —
same results, no fork — which is also the automatic fallback where fork is
unavailable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro._util.fastpath import np, require_numpy
from repro._util.validation import require_positive
from repro.network.accounting import CommunicationLedger
from repro.streaming.vector_kernels import (
    EXTERNAL_PARENT,
    SweepResult,
    SweepState,
    sweep_levels,
)


@dataclass
class Shard:
    """One worker's static slice of the flat tree.

    ``positions`` are the global canonical positions of the shard's nodes in
    ascending order (level-major, ascending id within a level — the charge
    order the reference paths use).  ``parent_local`` points into the shard's
    own arrays, with :data:`~repro.streaming.vector_kernels.EXTERNAL_PARENT`
    marking depth-1 tops whose parent is the (unsharded) root.
    ``level_spans[d]`` slices the shard arrays at global tree depth ``d``.
    """

    index: int
    positions: "np.ndarray"
    parent_local: "np.ndarray"
    level_spans: list[tuple[int, int]]
    max_depth: int
    ids: "np.ndarray"
    root_id: int


@dataclass
class ShardPlan:
    """A root-adjacent-cut partition of a flat tree."""

    shards: list[Shard]
    num_nodes: int


@dataclass
class ShardOutcome:
    """What one worker hands back: updated slices, stats, private ledger."""

    index: int
    state: SweepState
    active: "np.ndarray"
    result: SweepResult
    ledger: CommunicationLedger


def build_shard_plan(flat, num_shards: int) -> ShardPlan | None:
    """Partition ``flat`` into at most ``num_shards`` subtree shards.

    Returns ``None`` for degenerate trees (a bare root): there is nothing
    below the cut to fan out.
    """
    require_numpy("sharded execution")
    require_positive(num_shards, "num_shards")
    num_nodes = flat.num_nodes
    if num_nodes <= 1 or flat.height == 0:
        return None
    # Which root-child subtree owns each position, by one pass per level.
    tops = flat.child_index[flat.child_start[0] : flat.child_end[0]]
    owner = np.full(num_nodes, -1, dtype=np.int64)
    owner[tops] = np.arange(tops.size, dtype=np.int64)
    for start, end in flat.level_spans[2:]:
        owner[start:end] = owner[flat.parent[start:end]]
    # LPT packing: biggest subtree first, into the least-loaded bin.
    sizes = np.bincount(owner[1:], minlength=tops.size)
    bins = min(num_shards, int(tops.size))
    loads = [0] * bins
    shard_of_unit = np.zeros(tops.size, dtype=np.int64)
    for unit in np.argsort(-sizes, kind="stable").tolist():
        target = loads.index(min(loads))
        shard_of_unit[unit] = target
        loads[target] += int(sizes[unit])
    shard_of_node = shard_of_unit[owner[1:]]  # positions 1..n-1

    ids = flat.ids_array
    shards: list[Shard] = []
    for index in range(bins):
        positions = np.flatnonzero(shard_of_node == index).astype(np.int64) + 1
        if not positions.size:
            continue
        global_parent = flat.parent[positions]
        is_top = global_parent == 0
        local = np.searchsorted(positions, global_parent)
        parent_local = np.where(is_top, EXTERNAL_PARENT, local).astype(np.int64)
        depths = flat.depth[positions]
        max_depth = int(depths.max())
        level_spans = [(0, 0)]  # depth 0 (the root) is never in a shard
        for depth in range(1, max_depth + 1):
            level_spans.append(
                (
                    int(np.searchsorted(depths, depth, side="left")),
                    int(np.searchsorted(depths, depth, side="right")),
                )
            )
        shards.append(
            Shard(
                index=len(shards),
                positions=positions,
                parent_local=parent_local,
                level_spans=level_spans,
                max_depth=max_depth,
                ids=ids[positions],
                root_id=int(flat.root_id),
            )
        )
    if not shards:
        return None
    return ShardPlan(shards=shards, num_nodes=num_nodes)


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
_WORKER_SHARDS: Sequence[Shard] = ()


def _install_shards(shards: Sequence[Shard]) -> None:
    global _WORKER_SHARDS
    _WORKER_SHARDS = shards


def _run_shard_task(task: dict) -> ShardOutcome:
    """Sweep one shard slice against a private ledger (runs in a worker)."""
    shard = _WORKER_SHARDS[task["shard"]]
    state = SweepState(**task["columns"])
    active = task["active"]
    slack = task["slack"]
    protocol = task["protocol"]
    deepest = min(task["deepest"], shard.max_depth)
    ledger = CommunicationLedger()
    ids = shard.ids
    root_id = shard.root_id

    def charge(tx_pos, tx_par, sizes):
        senders = ids[tx_pos].tolist()
        external = tx_par == EXTERNAL_PARENT
        receivers = np.where(
            external, root_id, ids[np.maximum(tx_par, 0)]
        ).tolist()
        ledger.charge_batch(
            list(zip(senders, receivers)),
            sizes.tolist(),
            None,
            protocol=protocol,
        )
        return None  # perfect links: the engine enforces ReliableRadio

    result = sweep_levels(
        parent=shard.parent_local,
        level_spans=[shard.level_spans[depth] for depth in range(deepest, 0, -1)],
        state=state,
        active=active,
        slack=slack,
        charge=charge,
    )
    return ShardOutcome(
        index=shard.index, state=state, active=active, result=result, ledger=ledger
    )


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
class ShardRunner:
    """Dispatch shard sweep tasks to a reusable fork pool (or inline)."""

    def __init__(self, plan: ShardPlan, processes: int | None = None) -> None:
        self.plan = plan
        if processes is None:
            env = os.environ.get("REPRO_SHARD_PROCESSES")
            if env is not None:
                processes = int(env)
            else:
                processes = min(len(plan.shards), max(2, os.cpu_count() or 1))
        self._processes = processes
        self._pool = None

    def _ensure_pool(self):
        if self._processes <= 0:
            return None
        if self._pool is None:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - no fork on this platform
                self._processes = 0
                return None
            self._pool = context.Pool(
                processes=self._processes,
                initializer=_install_shards,
                initargs=(self.plan.shards,),
            )
        return self._pool

    def sweep(
        self, columns: SweepState, active, *, deepest: int, slack: float, protocol: str
    ) -> list[tuple[Shard, ShardOutcome]]:
        """Run the level sweep over every shard with active work."""
        work: list[tuple[Shard, dict]] = []
        for shard in self.plan.shards:
            shard_active = active[shard.positions]
            if not shard_active.any():
                continue
            work.append(
                (
                    shard,
                    {
                        "shard": shard.index,
                        "columns": {
                            name: getattr(columns, name)[shard.positions]
                            for name in SweepState.COLUMNS
                        },
                        "active": shard_active,
                        "deepest": deepest,
                        "slack": slack,
                        "protocol": protocol,
                    },
                )
            )
        if not work:
            return []
        pool = self._ensure_pool()
        if pool is None:
            _install_shards(self.plan.shards)
            outcomes = [_run_shard_task(task) for _, task in work]
        else:
            outcomes = pool.map(_run_shard_task, [task for _, task in work])
        return [(shard, outcome) for (shard, _), outcome in zip(work, outcomes)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
