#!/usr/bin/env python3
"""The sweep harness CLI: run, report, and diff declarative scenario sweeps.

Usage::

    python scripts/sweep.py list
    python scripts/sweep.py run e10_streaming e12_fault_tolerance [--out DIR]
        [--cache DIR] [--serial] [--force] [--expect-cached]
        [--baseline DIR] [--strict]
    python scripts/sweep.py report SWEEP_e10_streaming.json [...]
    python scripts/sweep.py diff baseline/SWEEP_x.json current/SWEEP_x.json
        [--rel-tolerance R] [--abs-tolerance A] [--strict]

``run`` accepts builtin spec names (see ``list``) or paths to ``.toml`` /
``.json`` spec files, executes each matrix through the cached fork pool,
and writes ``SWEEP_<name>.json`` + ``SWEEP_<name>.md`` into ``--out``.
``--expect-cached`` exits non-zero if any cell actually executed — the CI
assertion that a re-run of an unchanged spec is a pure cache recall.
``--baseline DIR`` diffs each fresh payload against ``DIR/SWEEP_<name>.json``
right after the run; with ``--strict`` a missing or changed cell fails the
command (the CI sweep gate).

Exit codes: 0 ok, 1 strict-gate failure (missing/regressed cells),
2 usage/spec error, 3 ``--expect-cached`` saw fresh executions.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exceptions import ConfigurationError  # noqa: E402
from repro.sweeps import (  # noqa: E402
    BUILTIN_SWEEPS,
    SweepRunner,
    diff_payloads,
    get_sweep,
    load_payload,
    load_spec,
    render_markdown,
    write_sweep_json,
    write_sweep_markdown,
)


def resolve_spec(token: str):
    """A builtin sweep name, or a path to a .toml/.json spec file."""
    if token in BUILTIN_SWEEPS:
        return get_sweep(token)
    if os.path.exists(token):
        return load_spec(token)
    raise ConfigurationError(
        f"{token!r} is neither a builtin sweep ({sorted(BUILTIN_SWEEPS)}) "
        "nor a spec file"
    )


def cmd_list(_args) -> int:
    print("builtin sweeps:")
    for name in sorted(BUILTIN_SWEEPS):
        spec = get_sweep(name)
        cells = spec.expand()
        axes = ", ".join(
            f"{axis}({len(values)})" for axis, values in sorted(spec.axes.items())
        )
        print(
            f"  {name}: experiment={spec.experiment}, axes [{axes}], "
            f"{len(cells)} cell(s) after constraints"
        )
    return 0


def cmd_run(args) -> int:
    failures: list[str] = []
    executed_total = 0
    for token in args.spec:
        spec = resolve_spec(token)
        runner = SweepRunner(spec, cache_dir=args.cache, processes=0 if args.serial else None)
        result = runner.run(force=args.force)
        executed_total += result.executed
        payload = result.payload()
        json_path = write_sweep_json(payload, args.out)
        md_path = write_sweep_markdown(payload, args.out)
        print(
            f"sweep {spec.name}: {len(result.outcomes)} cell(s), "
            f"{result.executed} executed, {result.cached} cached "
            f"-> {json_path}, {md_path}"
        )
        if args.baseline:
            baseline_path = Path(args.baseline) / json_path.name
            if not baseline_path.exists():
                message = f"{spec.name}: no baseline at {baseline_path}"
                print(f"  {message}")
                if args.strict:
                    failures.append(message)
                continue
            diff = diff_payloads(
                load_payload(baseline_path),
                payload,
                rel_tolerance=args.rel_tolerance,
                abs_tolerance=args.abs_tolerance,
            )
            print("  " + diff.describe().replace("\n", "\n  "))
            if not diff.ok:
                failures.append(f"{spec.name}: baseline diff failed")
    if args.expect_cached and executed_total:
        print(
            f"--expect-cached: {executed_total} cell(s) executed, expected 0",
            file=sys.stderr,
        )
        return 3
    if failures and args.strict:
        for failure in failures:
            print(f"sweep gate: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    for path in args.payload:
        print(render_markdown(load_payload(path)))
    return 0


def cmd_diff(args) -> int:
    diff = diff_payloads(
        load_payload(args.baseline),
        load_payload(args.current),
        rel_tolerance=args.rel_tolerance,
        abs_tolerance=args.abs_tolerance,
    )
    print(diff.describe())
    if not diff.ok and args.strict:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="expand + execute sweep spec(s)")
    run.add_argument("spec", nargs="+", help="builtin sweep name or spec file path")
    run.add_argument("--out", default=".", help="output directory for SWEEP_* files")
    run.add_argument("--cache", default=None, help="cell cache directory")
    run.add_argument("--serial", action="store_true", help="disable the fork pool")
    run.add_argument("--force", action="store_true", help="ignore cached cells")
    run.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail (exit 3) if any cell executed instead of hitting the cache",
    )
    run.add_argument(
        "--baseline", default=None, help="directory of baseline SWEEP_*.json to diff"
    )
    run.add_argument("--strict", action="store_true", help="fail on baseline diffs")
    run.add_argument("--rel-tolerance", type=float, default=0.0)
    run.add_argument("--abs-tolerance", type=float, default=0.0)

    report = sub.add_parser("report", help="render SWEEP_*.json as markdown")
    report.add_argument("payload", nargs="+", help="SWEEP_<name>.json path(s)")

    diff = sub.add_parser("diff", help="compare two SWEEP_*.json payloads")
    diff.add_argument("baseline")
    diff.add_argument("current")
    diff.add_argument("--rel-tolerance", type=float, default=0.0)
    diff.add_argument("--abs-tolerance", type=float, default=0.0)
    diff.add_argument("--strict", action="store_true", help="exit 1 on differences")

    lister = sub.add_parser("list", help="list builtin sweep specs")
    lister.set_defaults(func=cmd_list)
    run.set_defaults(func=cmd_run)
    report.set_defaults(func=cmd_report)
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
