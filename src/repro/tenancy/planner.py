"""The query planner: many tenant registrations, one shared summary plan.

Production means many tenants posting *overlapping* standing queries —
regional medians, fleet-wide count-distinct, predicate alarms.  Today each
:class:`~repro.streaming.ContinuousQueryEngine` pays for its own charged
convergecast; the planner collapses the overlap instead.  Every registered
query is reduced to its **plan signature** (:func:`plan_signature`) — the
parameters that determine what the charged convergecast must carry, and
*only* those.  Queries with the same signature share one **leg**: a single
standing query on the underlying engine, one charged convergecast per
epoch, one suppression decision.  Everything signature-*independent* is
derived for free at the root: a quantile query's ``fraction`` never appears
in its signature, so ten tenants asking for ten different percentiles of
the same digest ride one leg and each read their own rank off the shared
root summary.

Admission is tiered.  Sharing an existing leg is always free and always
granted; only a registration that needs a *new* leg spends against the
planner's optional bits budget (estimated as one full-summary convergecast,
:func:`estimate_leg_bits`).  When the budget is exhausted the tier decides:

``gold``
    the leg is created anyway (the decision is flagged ``over_budget`` so
    the overrun is visible, never silent);
``standard``
    the registration is **rejected** — a standard tenant is never silently
    handed a different approximation than it asked for;
``best_effort``
    the registration is **degraded** onto a compatible existing leg when
    one exists (same aggregate family over the same value universe, any
    approximation quality — see :func:`degrade_target`), else rejected.

Every outcome is returned — and retained — as an :class:`AdmissionDecision`,
so the per-tenant ledger split (:mod:`repro.tenancy.ledger`) can bill leg
creation to the tenant that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.streaming.queries import StandingQuery

#: Admission tiers, strongest first (see the module docstring).
TIERS = ("gold", "standard", "best_effort")

#: Possible :attr:`AdmissionDecision.status` values.
ADMISSION_STATUSES = ("admitted", "shared", "degraded", "rejected")

#: Items every cost probe summarises: a fixed tiny multiset that is valid
#: for every query family (0 lies in every value universe).
_PROBE_ITEMS = (0, 0, 0)


def plan_signature(query: StandingQuery) -> tuple:
    """The parameters that determine a query's charged convergecast.

    Two queries with equal signatures maintain byte-identical subtree
    summaries under identical inputs, so they can share one leg.  Answer
    parameters that act only at the root are deliberately excluded:

    * ``COUNT`` — no parameters at all;
    * ``COUNTP`` — the predicate's announced description *is* its identity
      (the paper requires the predicate to be broadcast at registration, so
      equal descriptions mean equal wire encodings);
    * ``QUANTILE`` / ``MEDIAN`` — the q-digest universe and compression;
      the queried ``fraction`` is root-side derivation, not plan;
    * ``DISTINCT`` — the LogLog geometry (registers, salt, clamp).
    """
    kind = getattr(query, "kind", None)
    if kind == "COUNT":
        return ("COUNT",)
    if kind == "COUNTP":
        return ("COUNTP", query.description)
    if kind in ("QUANTILE", "MEDIAN"):
        return ("QDIGEST", query.universe_size, query.compression)
    if kind == "DISTINCT":
        return (
            "DISTINCT",
            query.num_registers,
            query.salt,
            query.max_expected_count,
        )
    raise ConfigurationError(
        f"cannot plan a {type(query).__name__} (kind={kind!r}); the planner "
        "knows COUNT, COUNTP, QUANTILE/MEDIAN and DISTINCT standing queries"
    )


def estimate_leg_bits(query: StandingQuery, num_nodes: int) -> int:
    """Deterministic admission-time cost estimate for one new leg.

    One epoch of a brand-new leg ships every node's full summary, so the
    estimate is ``num_nodes`` times the serialized size of a small probe
    summary.  It is a planning number — the ledger split always bills the
    *actual* charged bits — but it is deterministic, so admission decisions
    are reproducible across runs and machines.
    """
    probe = query.local_summary(list(_PROBE_ITEMS))
    return int(probe.serialized_bits()) * max(1, int(num_nodes))


def degrade_target(signature: tuple, legs: "dict[str, SharedLeg]") -> str | None:
    """The leg a best-effort registration may be degraded onto, if any.

    Degradation must keep the *question* intact and give up only
    approximation quality: a q-digest leg over the same value universe
    (different compression) still answers the same rank query; any LogLog
    leg still estimates the same distinct count.  ``COUNT`` has no
    parameters (an exact signature match always shares first) and a
    ``COUNTP`` with a different predicate is a different question, so
    neither family ever degrades.
    """
    family = signature[0]
    if family == "QDIGEST":
        universe = signature[1]
        for name, leg in legs.items():
            if leg.signature[0] == "QDIGEST" and leg.signature[1] == universe:
                return name
    elif family == "DISTINCT":
        for name, leg in legs.items():
            if leg.signature[0] == "DISTINCT":
                return name
    return None


@dataclass(frozen=True)
class AdmissionDecision:
    """The planner's verdict on one tenant registration."""

    tenant: str
    query_name: str
    tier: str
    #: One of :data:`ADMISSION_STATUSES`.
    status: str
    #: The leg serving this query (``None`` when rejected).
    leg: str | None
    signature: tuple
    #: The new-leg cost estimate that was weighed against the budget
    #: (zero for exact shares — sharing is free by construction).
    estimated_bits: int
    #: A gold registration forced past an exhausted budget.
    over_budget: bool = False

    @property
    def admitted(self) -> bool:
        """Whether the query is being answered (any status but rejected)."""
        return self.status != "rejected"


@dataclass
class SharedLeg:
    """One charged convergecast serving every subscriber of a signature."""

    name: str
    signature: tuple
    #: The representative query registered on the engine (the first
    #: admitted registrant's — any subscriber's would maintain the same
    #: summaries, that is what sharing a signature means).
    query: StandingQuery
    #: The tenant whose admission created the leg; it is billed the leg's
    #: one-time registration broadcast.
    owner: str
    estimated_bits: int
    #: Billing units in registration order: one ``(tenant, query_name)``
    #: per served registration, exact shares included.
    subscriptions: list[tuple[str, str]] = field(default_factory=list)


class QueryPlanner:
    """Deduplicate tenant standing queries into a shared summary plan."""

    def __init__(self, num_nodes: int, bits_budget: int | None = None) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(
                f"num_nodes must be positive, got {num_nodes}"
            )
        if bits_budget is not None and bits_budget < 0:
            raise ConfigurationError(
                f"bits_budget must be non-negative, got {bits_budget}"
            )
        self.num_nodes = num_nodes
        self.bits_budget = bits_budget
        #: Estimated spend of every leg created so far (admission currency;
        #: the ledger split bills actual bits).
        self.estimated_spend = 0
        self._legs: dict[str, SharedLeg] = {}
        self._by_signature: dict[tuple, str] = {}
        self.decisions: list[AdmissionDecision] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def legs(self) -> dict[str, SharedLeg]:
        """The shared legs by name, in creation order."""
        return dict(self._legs)

    def leg(self, name: str) -> SharedLeg:
        try:
            return self._legs[name]
        except KeyError:
            raise ConfigurationError(f"unknown leg {name!r}") from None

    def subscriptions(self) -> dict[str, list[tuple[str, str]]]:
        """Leg name -> billing units, the shape the ledger split consumes."""
        return {name: list(leg.subscriptions) for name, leg in self._legs.items()}

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def admit(
        self,
        tenant: str,
        query_name: str,
        query: StandingQuery,
        tier: str = "standard",
    ) -> AdmissionDecision:
        """Plan one tenant registration; returns the recorded decision.

        The caller (:class:`~repro.tenancy.MultiTenantEngine`) is
        responsible for registering newly *admitted* legs on the underlying
        engine; shared and degraded registrations change no engine state at
        all — that is the entire point.
        """
        if tier not in TIERS:
            raise ConfigurationError(
                f"unknown tier {tier!r}; expected one of {TIERS}"
            )
        signature = plan_signature(query)

        existing = self._by_signature.get(signature)
        if existing is not None:
            decision = self._decide(
                tenant, query_name, tier, "shared", existing, signature, 0
            )
            self._legs[existing].subscriptions.append((tenant, query_name))
            return decision

        cost = estimate_leg_bits(query, self.num_nodes)
        within_budget = (
            self.bits_budget is None
            or self.estimated_spend + cost <= self.bits_budget
        )
        if within_budget or tier == "gold":
            leg_name = f"leg{len(self._legs):02d}_{signature[0].lower()}"
            self._legs[leg_name] = SharedLeg(
                name=leg_name,
                signature=signature,
                query=query,
                owner=tenant,
                estimated_bits=cost,
                subscriptions=[(tenant, query_name)],
            )
            self._by_signature[signature] = leg_name
            self.estimated_spend += cost
            return self._decide(
                tenant,
                query_name,
                tier,
                "admitted",
                leg_name,
                signature,
                cost,
                over_budget=not within_budget,
            )

        if tier == "best_effort":
            target = degrade_target(signature, self._legs)
            if target is not None:
                decision = self._decide(
                    tenant, query_name, tier, "degraded", target, signature, 0
                )
                self._legs[target].subscriptions.append((tenant, query_name))
                return decision
        return self._decide(
            tenant, query_name, tier, "rejected", None, signature, cost
        )

    def _decide(
        self,
        tenant: str,
        query_name: str,
        tier: str,
        status: str,
        leg: str | None,
        signature: tuple,
        estimated_bits: int,
        over_budget: bool = False,
    ) -> AdmissionDecision:
        decision = AdmissionDecision(
            tenant=tenant,
            query_name=query_name,
            tier=tier,
            status=status,
            leg=leg,
            signature=signature,
            estimated_bits=estimated_bits,
            over_budget=over_budget,
        )
        self.decisions.append(decision)
        return decision
