"""E1 — Fact 2.1: MIN / MAX / COUNT / SUM / AVG cost O(log N) bits per node.

Reproduces the claim that the TAG-style primitive aggregates stay
logarithmic per node: the table reports the maximum per-node bits for each
aggregate as N grows, together with the fitted power-law exponent (which
should be far below 1, i.e. far from linear growth).
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_primitive_aggregates_sweep
from repro.analysis.metrics import fit_against_model, fit_growth_exponent
from repro.analysis.report import format_table

SIZES = [64, 144, 324, 729, 1024]


def test_primitive_aggregates_scaling(benchmark):
    records = run_once(benchmark, run_primitive_aggregates_sweep, SIZES, topology="grid")

    rows = []
    per_protocol: dict[str, list[tuple[int, int]]] = {}
    for record in records:
        per_protocol.setdefault(record.protocol, []).append(
            (record.num_items, record.max_node_bits)
        )
        rows.append(
            [record.protocol, record.num_items, record.max_node_bits, record.rounds]
        )
    print()
    print(format_table(
        ["aggregate", "N", "max bits/node", "rounds"],
        rows,
        title="E1  Fact 2.1 — primitive aggregates",
    ))

    for protocol, points in per_protocol.items():
        sizes = [n for n, _ in points]
        costs = [bits for _, bits in points]
        exponent, _ = fit_growth_exponent(sizes, costs)
        _, spread = fit_against_model(sizes, costs, lambda n: math.log2(n))
        benchmark.extra_info[f"{protocol}_power_law_exponent"] = round(exponent, 3)
        benchmark.extra_info[f"{protocol}_log_model_ratio_spread"] = round(spread, 3)
        # Paper shape: per-node cost is polylogarithmic, nowhere near linear.
        assert exponent < 0.6, f"{protocol} grew like N^{exponent:.2f}"


def test_primitive_aggregates_topology_insensitivity(benchmark):
    def sweep():
        results = {}
        for topology in ("grid", "line", "random_geometric", "single_hop"):
            records = run_primitive_aggregates_sweep([256], topology=topology)
            results[topology] = max(record.max_node_bits for record in records)
        return results

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["topology", "max bits/node (any aggregate)"],
        [[name, bits] for name, bits in results.items()],
        title="E1b  aggregates across topologies (N = 256)",
    ))
    benchmark.extra_info.update(results)
    # With a bounded-degree tree no topology should be more than a small
    # factor worse than the best one.
    assert max(results.values()) <= 5 * min(results.values())
