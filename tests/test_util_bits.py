"""Tests for the bit-accounting helpers."""

import pytest

from repro._util.bits import bit_width, encoded_int_bits, fixed_width_bits, varint_bits
from repro.exceptions import ConfigurationError


class TestBitWidth:
    def test_zero_costs_one_bit(self):
        assert bit_width(0) == 1

    def test_one_costs_one_bit(self):
        assert bit_width(1) == 1

    @pytest.mark.parametrize(
        "value, expected",
        [(2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10), (1024, 11)],
    )
    def test_powers_and_boundaries(self, value, expected):
        assert bit_width(value) == expected

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bit_width(-1)

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigurationError):
            bit_width(3.5)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            bit_width(True)


class TestFixedWidth:
    def test_domain_zero(self):
        assert fixed_width_bits(0) == 1

    def test_domain_boundaries(self):
        assert fixed_width_bits(1) == 1
        assert fixed_width_bits(2) == 2
        assert fixed_width_bits(65535) == 16

    def test_monotone_in_domain(self):
        widths = [fixed_width_bits(value) for value in range(1, 200)]
        assert widths == sorted(widths)


class TestVarint:
    def test_small_values(self):
        assert varint_bits(0) == 1
        assert varint_bits(1) == 1

    def test_self_delimiting_overhead(self):
        # A value of binary length L costs 2L - 1 bits.
        assert varint_bits(7) == 5       # L = 3
        assert varint_bits(8) == 7       # L = 4
        assert varint_bits(1 << 19) == 39

    def test_adaptive_smaller_for_small_values(self):
        # The whole point: log-domain values are much cheaper than raw values.
        raw_value = 1 << 20
        log_value = 20
        assert varint_bits(log_value) < varint_bits(raw_value) / 3


class TestEncodedIntBits:
    def test_uses_fixed_width_when_domain_known(self):
        assert encoded_int_bits(5, max_value=1023) == 10

    def test_uses_varint_when_domain_unknown(self):
        assert encoded_int_bits(5) == varint_bits(5)

    def test_rejects_value_above_domain(self):
        with pytest.raises(ValueError):
            encoded_int_bits(2048, max_value=1023)
