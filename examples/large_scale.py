"""Large-scale aggregation: a 50,000-node sensor field on a laptop.

Run with::

    python examples/large_scale.py

The batched execution core plans whole tree levels and charges them to the
ledger in bulk, so a field of 50k nodes — far beyond what the per-edge
reference path handles comfortably — answers root-initiated aggregate
queries in fractions of a second, with exactly the same bit-level accounting
the small experiments use.  The script

1. builds a ~50k-node grid field with one reading per node,
2. answers COUNT, SUM, MAX and an adaptive-size SUM over the spanning tree,
   timing each sweep,
3. re-runs the smallest sweep on the per-edge path for a wall-clock
   comparison (on a subsampled 10k field, where per-edge is still bearable),
   verifying the two ledgers agree bit for bit.
"""

from __future__ import annotations

import time
from operator import add

from repro.analysis.report import format_table
from repro.network.simulator import SensorNetwork
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.workloads.generators import generate_workload

FIELD_NODES = 50_176  # 224 x 224 grid
COMPARISON_NODES = 10_000  # 100 x 100 grid


def build_field(num_nodes: int) -> SensorNetwork:
    readings = generate_workload("uniform", num_nodes, max_value=1 << 16, seed=0)
    # degree_bound=None keeps construction at O(n): the bounded-degree
    # re-parenting heuristic is the slow part at this scale, not the sweeps.
    return SensorNetwork.from_items(
        readings, topology="grid", seed=0, degree_bound=None
    )


def timed_query(network: SensorNetwork, name: str, local_value, combine, size_bits):
    network.reset_ledger()
    started = time.perf_counter()
    broadcast(network, f"{name}-request", 32, protocol=f"{name}-request")
    answer = convergecast(
        network, local_value, combine, size_bits, protocol=name
    )
    elapsed = time.perf_counter() - started
    snapshot = network.ledger.snapshot()
    return [
        name,
        answer,
        round(elapsed * 1000, 1),
        snapshot.max_node_bits,
        snapshot.messages,
    ]


def main() -> None:
    started = time.perf_counter()
    field = build_field(FIELD_NODES)
    build_seconds = time.perf_counter() - started
    print(
        f"built a {field.num_nodes}-node grid field "
        f"(tree height {field.tree.height}) in {build_seconds:.2f}s\n"
    )

    rows = [
        timed_query(field, "COUNT", lambda node: node.item_count, add, 32),
        timed_query(field, "SUM", lambda node: sum(node.items), add, 64),
        timed_query(field, "MAX", lambda node: max(node.items), max, 32),
        timed_query(
            field,
            "SUM(adaptive)",
            lambda node: sum(node.items),
            add,
            lambda value: max(8, value.bit_length()),
        ),
    ]
    print(format_table(
        ["query", "answer", "wall-clock (ms)", "max node bits", "messages"],
        rows,
        title=f"Root-initiated aggregates over {field.num_nodes} nodes (batched)",
    ))

    # Wall-clock comparison on a 10k field, where per-edge is still bearable.
    comparison = build_field(COMPARISON_NODES)
    timings = {}
    snapshots = {}
    for mode in ("batched", "per-edge"):
        comparison.execution = mode
        comparison.reset_ledger()
        started = time.perf_counter()
        broadcast(comparison, "sum-request", 32, protocol="sum-request")
        convergecast(
            comparison, lambda node: sum(node.items), add, 64, protocol="SUM"
        )
        timings[mode] = time.perf_counter() - started
        snapshots[mode] = comparison.ledger.snapshot()
    print()
    print(format_table(
        ["execution path", "wall-clock (ms)"],
        [[mode, round(seconds * 1000, 1)] for mode, seconds in timings.items()],
        title=f"Same SUM round trip at {comparison.num_nodes} nodes",
    ))
    identical = snapshots["batched"] == snapshots["per-edge"]
    print(
        f"\nledgers bit-for-bit identical: {'yes' if identical else 'NO'}; "
        f"batched is {timings['per-edge'] / timings['batched']:.1f}x faster"
    )


if __name__ == "__main__":
    main()
