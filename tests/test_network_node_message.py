"""Tests for sensor nodes and messages."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.message import Message
from repro.network.node import SensorNode


class TestSensorNode:
    def test_items_validated_at_construction(self):
        node = SensorNode(node_id=1, items=[3, 0, 7])
        assert node.items == [3, 0, 7]
        assert node.item_count == 3

    def test_negative_item_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorNode(node_id=1, items=[-2])

    def test_negative_node_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorNode(node_id=-1)

    def test_add_and_clear_items(self):
        node = SensorNode(node_id=0)
        node.add_item(5)
        node.add_items([6, 7])
        assert node.items == [5, 6, 7]
        node.clear_items()
        assert node.item_count == 0

    def test_single_item_accessor(self):
        node = SensorNode(node_id=0, items=[9])
        assert node.single_item() == 9

    def test_single_item_accessor_rejects_multiple(self):
        node = SensorNode(node_id=0, items=[1, 2])
        with pytest.raises(ConfigurationError):
            node.single_item()

    def test_single_item_accessor_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            SensorNode(node_id=0).single_item()

    def test_count_matching(self):
        node = SensorNode(node_id=0, items=[1, 5, 9, 5])
        assert node.count_matching(lambda value: value == 5) == 2
        assert node.count_matching(lambda value: value > 100) == 0

    def test_local_extrema(self):
        node = SensorNode(node_id=0, items=[4, 2, 8])
        assert node.local_min() == 2
        assert node.local_max() == 8

    def test_local_extrema_empty(self):
        node = SensorNode(node_id=0)
        assert node.local_min() is None
        assert node.local_max() is None

    def test_scratch_reset(self):
        node = SensorNode(node_id=0)
        node.scratch["x"] = 1
        node.reset_scratch()
        assert node.scratch == {}


class TestMessage:
    def test_basic_fields(self):
        message = Message(sender=1, receiver=2, payload={"a": 1}, size_bits=16)
        assert message.size_bits == 16
        assert message.protocol == "unknown"

    def test_self_message_rejected(self):
        with pytest.raises(ConfigurationError):
            Message(sender=1, receiver=1, payload=None, size_bits=1)

    def test_negative_size_rejected(self):
        with pytest.raises(Exception):
            Message(sender=1, receiver=2, payload=None, size_bits=-1)

    def test_with_receiver_copies(self):
        message = Message(sender=1, receiver=2, payload="p", size_bits=4, protocol="X")
        redirected = message.with_receiver(3)
        assert redirected.receiver == 3
        assert redirected.sender == 1
        assert redirected.protocol == "X"
        assert message.receiver == 2
