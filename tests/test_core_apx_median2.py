"""Tests for the polyloglog median of Fig. 4 (Theorem 4.7 / Corollary 4.8)."""

import pytest

from repro.core.apx_median2 import PolyloglogMedianProtocol, _log_length
from repro.core.definitions import is_approximate_order_statistic, reference_median
from repro.core.median import DeterministicMedianProtocol
from repro.core.rep_count import RepetitionPolicy
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology
from repro.workloads.generators import generate_workload


def _network(workload="uniform", n=144, side=12, max_value=1 << 17, seed=1):
    items = generate_workload(workload, n, max_value=max_value, seed=seed)
    return SensorNetwork.from_items(items, topology=grid_topology(side)), items


class TestLengthTransform:
    def test_zero_is_defined(self):
        assert _log_length(0) == 0

    @pytest.mark.parametrize(
        "value, expected", [(1, 1), (2, 1), (3, 2), (7, 3), (8, 3), (1023, 10), (1024, 10)]
    )
    def test_floor_log_of_value_plus_one(self, value, expected):
        assert _log_length(value) == expected

    def test_domain_compression(self):
        # The whole point: a 2^20-sized domain compresses to ~21 lengths.
        assert _log_length((1 << 20) - 1) <= 20


class TestConfiguration:
    def test_beta_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            PolyloglogMedianProtocol(beta=0.0)
        with pytest.raises(ConfigurationError):
            PolyloglogMedianProtocol(epsilon=0.0)
        with pytest.raises(Exception):
            PolyloglogMedianProtocol(beta=1.5)

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            PolyloglogMedianProtocol().run(network)


class TestAccuracy:
    def test_value_error_within_beta_budget(self):
        network, items = _network(seed=2)
        beta = 1.0 / 16.0
        protocol = PolyloglogMedianProtocol(
            beta=beta, epsilon=0.25, num_registers=256, seed=7
        )
        outcome = protocol.run(network).value
        true_median = reference_median(items)
        # The zoom-in reaches the dyadic interval containing (an approximate)
        # median; allow the rank slack of the guarantee plus 2 beta of value slack.
        assert is_approximate_order_statistic(
            items, len(items) / 2.0, outcome.value,
            alpha=max(0.5, outcome.alpha_guarantee), beta=2 * beta,
        ) or abs(outcome.value - true_median) / max(items) <= 2 * beta

    def test_precision_improves_with_smaller_beta(self):
        network, items = _network(seed=3)
        true_median = reference_median(items)
        errors = {}
        for beta in (0.5, 1.0 / 64.0):
            protocol = PolyloglogMedianProtocol(
                beta=beta, epsilon=0.25, num_registers=256, seed=11
            )
            outcome = protocol.run(network).value
            errors[beta] = abs(outcome.value - true_median) / max(items)
        assert errors[1.0 / 64.0] <= errors[0.5] + 0.05

    def test_repeated_trials_mostly_succeed(self):
        network, items = _network(seed=4)
        beta = 1.0 / 16.0
        successes = 0
        trials = 6
        for trial in range(trials):
            protocol = PolyloglogMedianProtocol(
                beta=beta, epsilon=0.25, num_registers=256, seed=200 + trial
            )
            outcome = protocol.run(network).value
            if is_approximate_order_statistic(
                items, len(items) / 2.0, outcome.value,
                alpha=max(0.5, outcome.alpha_guarantee), beta=2 * beta,
            ):
                successes += 1
        assert successes >= trials - 2

    def test_all_equal_input(self):
        items = [500] * 49
        network = SensorNetwork.from_items(items, topology=grid_topology(7))
        outcome = PolyloglogMedianProtocol(num_registers=64, seed=1).run(network).value
        assert abs(outcome.value - 500) <= 500 * 2 * outcome.beta + 1

    def test_output_within_domain(self):
        for seed in range(4):
            network, items = _network(seed=30 + seed, max_value=10_000)
            outcome = PolyloglogMedianProtocol(
                num_registers=64, seed=seed, domain_max=10_000
            ).run(network).value
            assert 0 <= outcome.value <= 10_000

    def test_scratch_state_cleaned_up(self):
        network, _ = _network(seed=5)
        PolyloglogMedianProtocol(num_registers=64, seed=2).run(network)
        assert all(node.scratch == {} for node in network.nodes())


class TestStages:
    def test_stage_count_tracks_beta(self):
        network, _ = _network(seed=6)
        fine = PolyloglogMedianProtocol(beta=1.0 / 64.0, num_registers=64, seed=3)
        outcome = fine.run(network).value
        assert 1 <= len(outcome.stages) <= 6  # ceil(log2 64) = 6

    def test_stage_records_are_consistent(self):
        network, _ = _network(seed=7)
        outcome = PolyloglogMedianProtocol(
            beta=1.0 / 16.0, num_registers=64, seed=4
        ).run(network).value
        for record in outcome.stages:
            assert record.interval_width_scaled == 1 << record.mu_hat
            assert record.k >= 1.0
            assert record.original_scale <= 1.0 + 1e-9


class TestComplexity:
    def test_probe_messages_are_loglog_sized(self):
        # The dominant messages are LogLog sketches plus loglog-width
        # predicates; none of them should carry a full-width value.  We check
        # this indirectly: doubling the value-domain width barely moves the
        # per-node cost, while it visibly moves the deterministic protocol's.
        n, side = 100, 10
        costs = {}
        exact_costs = {}
        for max_value in (1 << 10, 1 << 20):
            items = generate_workload("uniform", n, max_value=max_value, seed=8)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            result = PolyloglogMedianProtocol(
                beta=1.0 / 8.0, num_registers=16, seed=5,
                repetition_policy=RepetitionPolicy.practical(cap=2),
                domain_max=max_value,
            ).run(network)
            costs[max_value] = result.max_node_bits
            network.reset_ledger()
            exact_costs[max_value] = DeterministicMedianProtocol(
                domain_max=max_value
            ).run(network).max_node_bits
        approx_growth = costs[1 << 20] / costs[1 << 10]
        exact_growth = exact_costs[1 << 20] / exact_costs[1 << 10]
        assert approx_growth < exact_growth

    def test_per_node_bits_flat_in_n(self):
        costs = []
        for side in (6, 12, 18):
            items = generate_workload("uniform", side * side, max_value=1 << 16, seed=9)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            result = PolyloglogMedianProtocol(
                beta=1.0 / 8.0, num_registers=16, seed=6,
                repetition_policy=RepetitionPolicy.practical(cap=2),
            ).run(network)
            costs.append(result.max_node_bits)
        assert max(costs) <= 1.8 * min(costs)
