"""The declarative scenario-sweep harness.

The ROADMAP's "one more scenario = one spec line" refactor: a
:class:`SweepSpec` declares axes (topology, radio, execution mode, fault
scenario, detector period, workload, ``n``, ``seed``, …) and constraint
filters; :class:`SweepRunner` expands it into a run matrix and executes it
through a fork pool with content-hashed per-cell result caching; the
normalizer folds every cell's measures and telemetry phase breakdown into
one ``SWEEP_<name>.json`` plus a markdown report, and :func:`diff_payloads`
compares runs against a committed baseline — the CI sweep gate.

``scripts/sweep.py`` is the CLI (``run`` / ``report`` / ``diff`` /
``list``); ``docs/SWEEPS.md`` documents the spec schema and the caching
semantics.
"""

from repro.sweeps.cells import CELL_RUNNERS, run_cell, runner_for
from repro.sweeps.report import (
    SweepDiff,
    diff_payloads,
    load_payload,
    normalize,
    render_markdown,
    write_sweep_json,
    write_sweep_markdown,
)
from repro.sweeps.runner import CellOutcome, SweepResult, SweepRunner, run_sweep
from repro.sweeps.spec import (
    CACHE_VERSION,
    Constraint,
    SweepCell,
    SweepSpec,
    cell_key,
    load_spec,
    spec_from_dict,
)
from repro.sweeps.specs import (
    BUILTIN_SWEEPS,
    e10_streaming_spec,
    e12_fault_tolerance_spec,
    get_sweep,
)

__all__ = [
    "BUILTIN_SWEEPS",
    "CACHE_VERSION",
    "CELL_RUNNERS",
    "CellOutcome",
    "Constraint",
    "SweepCell",
    "SweepDiff",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "cell_key",
    "diff_payloads",
    "e10_streaming_spec",
    "e12_fault_tolerance_spec",
    "get_sweep",
    "load_payload",
    "load_spec",
    "normalize",
    "render_markdown",
    "run_cell",
    "run_sweep",
    "runner_for",
    "spec_from_dict",
    "write_sweep_json",
    "write_sweep_markdown",
]
