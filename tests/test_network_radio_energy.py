"""Tests for the radio models and the energy model."""

import pytest

from repro.exceptions import DeliveryError
from repro.network.accounting import CommunicationLedger
from repro.network.energy import EnergyModel
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.network.topology import line_topology
from repro.protocols.aggregates import CountProtocol


class TestReliableRadio:
    def test_always_delivers_once(self):
        radio = ReliableRadio()
        for _ in range(10):
            outcome = radio.transmit(0, 1)
            assert outcome.delivered
            assert outcome.attempts == 1
            assert outcome.copies_delivered == 1


class TestLossyRadio:
    def test_zero_loss_behaves_like_reliable(self):
        radio = LossyRadio(loss_rate=0.0, seed=1)
        assert radio.transmit(0, 1).attempts == 1

    def test_retries_until_delivery(self):
        radio = LossyRadio(loss_rate=0.7, seed=3, max_retries=64)
        outcomes = [radio.transmit(0, 1) for _ in range(50)]
        assert all(outcome.delivered for outcome in outcomes)
        assert any(outcome.attempts > 1 for outcome in outcomes)

    def test_mean_attempts_tracks_loss_rate(self):
        radio = LossyRadio(loss_rate=0.5, seed=5, max_retries=200)
        attempts = [radio.transmit(0, 1).attempts for _ in range(400)]
        mean_attempts = sum(attempts) / len(attempts)
        assert 1.6 < mean_attempts < 2.5  # geometric mean 1/(1-p) = 2

    def test_permanent_failure_raises(self):
        radio = LossyRadio(loss_rate=0.999, seed=1, max_retries=0)
        with pytest.raises(DeliveryError):
            for _ in range(100):
                radio.transmit(0, 1)

    def test_loss_rate_one_rejected(self):
        with pytest.raises(DeliveryError):
            LossyRadio(loss_rate=1.0)

    def test_reset_restores_stream(self):
        radio = LossyRadio(loss_rate=0.5, seed=9)
        first = [radio.transmit(0, 1).attempts for _ in range(20)]
        radio.reset()
        second = [radio.transmit(0, 1).attempts for _ in range(20)]
        assert first == second


class TestRadioThroughProtocols:
    """Radio edge cases exercised through the full network/protocol stack."""

    def _line_network(self, radio):
        return SensorNetwork.from_items(
            list(range(12)), topology=line_topology(12), radio=radio
        )

    def test_lossy_retry_exhaustion_raises_through_protocol_run(self):
        network = self._line_network(LossyRadio(loss_rate=0.9, seed=4, max_retries=1))
        with pytest.raises(DeliveryError):
            CountProtocol().run(network)

    def test_lossy_retries_inflate_ledger_charges(self):
        reliable = self._line_network(ReliableRadio())
        lossy = self._line_network(LossyRadio(loss_rate=0.5, seed=8, max_retries=64))
        baseline = CountProtocol().run(reliable)
        inflated = CountProtocol().run(lossy)
        assert inflated.value == baseline.value == 12
        # Every retry is charged, so lossy links cost strictly more bits.
        assert inflated.total_bits > baseline.total_bits
        assert inflated.messages > baseline.messages

    def test_duplicating_radio_charges_every_copy(self):
        network = self._line_network(DuplicatingRadio(duplicate_rate=1.0, seed=2))
        network.send(0, 1, payload="x", size_bits=8, protocol="test")
        # Both delivered copies are charged to sender and receiver alike.
        assert network.ledger.total_bits == 16
        assert network.ledger.total_messages == 2
        assert network.ledger.traffic(0).bits_sent == 16
        assert network.ledger.traffic(1).bits_received == 16

    def test_duplicating_radio_doubles_protocol_cost_not_answer(self):
        reliable = self._line_network(ReliableRadio())
        duplicating = self._line_network(DuplicatingRadio(duplicate_rate=1.0, seed=2))
        baseline = CountProtocol().run(reliable)
        doubled = CountProtocol().run(duplicating)
        assert doubled.value == baseline.value == 12
        assert doubled.total_bits == 2 * baseline.total_bits

    def test_reset_makes_repeated_protocol_runs_identical(self):
        network = self._line_network(LossyRadio(loss_rate=0.4, seed=6, max_retries=64))
        first = CountProtocol().run(network)
        # reset_ledger also resets the radio's RNG stream, so the retry
        # pattern — and therefore every charge — replays exactly.
        network.reset_ledger()
        second = CountProtocol().run(network)
        assert first.value == second.value
        assert first.total_bits == second.total_bits
        assert first.messages == second.messages

    def test_without_reset_repeated_runs_diverge(self):
        network = self._line_network(LossyRadio(loss_rate=0.4, seed=6, max_retries=64))
        first = CountProtocol().run(network)
        second = CountProtocol().run(network)  # RNG stream keeps advancing
        assert first.value == second.value
        assert first.total_bits != second.total_bits


class TestDuplicatingRadio:
    def test_no_duplication_at_zero_rate(self):
        radio = DuplicatingRadio(duplicate_rate=0.0, seed=1)
        assert all(radio.transmit(0, 1).copies_delivered == 1 for _ in range(20))

    def test_duplicates_appear(self):
        radio = DuplicatingRadio(duplicate_rate=0.5, seed=2)
        copies = [radio.transmit(0, 1).copies_delivered for _ in range(200)]
        assert set(copies) == {1, 2}
        fraction_duplicated = sum(1 for c in copies if c == 2) / len(copies)
        assert 0.35 < fraction_duplicated < 0.65


class TestEnergyModel:
    def test_transmit_more_expensive_than_receive(self):
        model = EnergyModel()
        assert model.transmit_cost(100) > model.receive_cost(100)

    def test_report_from_ledger(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 1000)
        ledger.charge(1, 2, 500)
        report = EnergyModel().report(ledger)
        assert set(report.per_node_nj) == {0, 1, 2}
        # Node 1 both received 1000 and sent 500 — it is the hottest node.
        assert report.peak_node_nj == report.per_node_nj[1]
        assert report.total_nj == pytest.approx(sum(report.per_node_nj.values()))

    def test_lifetime_proxy_inverse_of_peak(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 10)
        report = EnergyModel().report(ledger)
        assert report.network_lifetime_proxy == pytest.approx(1.0 / report.peak_node_nj)

    def test_empty_ledger_report(self):
        report = EnergyModel().report(CommunicationLedger())
        assert report.total_nj == 0.0
        assert report.network_lifetime_proxy == float("inf")
