"""The sweep executor: content-addressed caching plus a fork worker pool.

Execution strategy, in the worker pattern of
:class:`repro.network.sharding.ShardRunner`:

1. :meth:`SweepRunner.run` expands the spec, then partitions the matrix
   into *cached* cells (a valid result file exists under the cell's
   content hash) and *missing* cells.
2. Missing cells are executed through a ``multiprocessing`` fork pool —
   cells are independent seeded simulations, so they parallelise
   embarrassingly — or inline when fork is unavailable, when
   ``REPRO_SWEEP_PROCESSES=0``, or when only one cell is missing.
   Serial and parallel execution produce identical results (asserted in
   ``tests/test_sweeps.py``): every cell runner is deterministic in its
   parameters and shares no state with its siblings.
3. Each fresh result is written back to the cache, keyed by
   :func:`repro.sweeps.spec.cell_key`.  Editing one axis value therefore
   re-executes only the new cells; re-running an unchanged spec executes
   zero.

Cache entries self-describe (key, experiment, parameters, result); a
corrupt or mismatched file is treated as a miss and silently re-executed,
never trusted.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.sweeps.cells import run_cell, runner_for
from repro.sweeps.spec import SweepCell, SweepSpec

#: Default on-disk cache location, overridable per-runner or via env.
DEFAULT_CACHE_DIR = ".sweep-cache"


@dataclass(frozen=True)
class CellOutcome:
    """One executed-or-recalled cell and where its result came from."""

    cell: SweepCell
    result: dict[str, Any]
    cached: bool


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one :meth:`SweepRunner.run` call."""

    spec: SweepSpec
    outcomes: list[CellOutcome]

    @property
    def executed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.cached)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def payload(self) -> dict:
        """The normalized ``SWEEP_<name>.json`` payload (see ``report``)."""
        from repro.sweeps.report import normalize

        return normalize(self.spec, self.outcomes)


def _run_cell_task(task: tuple[str, dict]) -> dict:
    """Pool worker entry point: one (experiment, params) cell."""
    experiment, params = task
    return run_cell(experiment, params)


class SweepRunner:
    """Execute a sweep spec with per-cell disk caching and a fork pool."""

    def __init__(
        self,
        spec: SweepSpec,
        cache_dir: "str | Path | None" = None,
        processes: int | None = None,
    ) -> None:
        self.spec = spec
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_SWEEP_CACHE", DEFAULT_CACHE_DIR)
        self.cache_dir = Path(cache_dir)
        if processes is None:
            env = os.environ.get("REPRO_SWEEP_PROCESSES")
            processes = int(env) if env is not None else None
        self._processes = processes

    # ------------------------------------------------------------------ #
    # Cache
    # ------------------------------------------------------------------ #
    def _cache_path(self, cell: SweepCell) -> Path:
        return self.cache_dir / f"{cell.key}.json"

    def cached_result(self, cell: SweepCell) -> "dict | None":
        """The cell's cached result, or ``None`` on miss/corruption."""
        path = self._cache_path(cell)
        if not path.exists():
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("key") != cell.key or "result" not in entry:
            return None
        return entry["result"]

    def _store(self, cell: SweepCell, result: dict) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": cell.key,
            "experiment": cell.experiment,
            "params": cell.params,
            "result": result,
        }
        path = self._cache_path(cell)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute(self, cells: list[SweepCell]) -> list[dict]:
        tasks = [(cell.experiment, cell.params) for cell in cells]
        processes = self._processes
        if processes is None:
            processes = min(len(tasks), max(2, os.cpu_count() or 1))
        if processes <= 1 or len(tasks) <= 1:
            return [_run_cell_task(task) for task in tasks]
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - no fork on this platform
            return [_run_cell_task(task) for task in tasks]
        with context.Pool(processes=processes) as pool:
            return pool.map(_run_cell_task, tasks)

    def run(self, force: bool = False) -> SweepResult:
        """Expand, recall cached cells, execute the rest, cache them.

        ``force`` ignores (and overwrites) existing cache entries.
        Outcomes come back in matrix order regardless of which cells were
        cached or how the pool scheduled the rest.
        """
        cells = self.spec.expand()
        for cell in cells:
            runner_for(cell.experiment)  # fail on unknown kinds before work
        recalled: dict[int, dict] = {}
        missing: list[SweepCell] = []
        for cell in cells:
            result = None if force else self.cached_result(cell)
            if result is None:
                missing.append(cell)
            else:
                recalled[cell.index] = result
        fresh = {
            cell.index: result
            for cell, result in zip(missing, self._execute(missing))
        }
        for cell in missing:
            self._store(cell, fresh[cell.index])
        outcomes = [
            CellOutcome(
                cell=cell,
                result=recalled.get(cell.index, fresh.get(cell.index)),
                cached=cell.index in recalled,
            )
            for cell in cells
        ]
        return SweepResult(spec=self.spec, outcomes=outcomes)


def run_sweep(
    spec: SweepSpec,
    cache_dir: "str | Path | None" = None,
    processes: int | None = None,
    force: bool = False,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(spec, cache_dir=cache_dir, processes=processes).run(
        force=force
    )
