"""Fault tolerance: a sensor field that survives a crash storm and an outage.

Run with::

    python examples/fault_tolerance.py

A 400-node sensor field answers standing COUNT and MEDIAN queries over
drifting readings while things go wrong on schedule: a 10% crash storm at
epoch 3, a correlated regional outage at epoch 7, and full recovery of the
storm's casualties at epoch 10.  The :class:`~repro.faults.FaultEngine`
injects the failures, :class:`~repro.faults.TreeRepair` re-attaches the
orphaned subtrees through local adoption handshakes, and the continuous-query
engine re-synchronises only the summaries along repaired paths.

The epoch table shows the point of the architecture: fault epochs cost a
few hundred bits of repair control traffic plus targeted re-sync — not a
network-wide rebuild — and the answers track the attached ground truth
within the ε budget on every epoch.  A second run with the repair policy
pinned to ``strategy="rebuild"`` (tear down, flood, recompute) shows what
the same storms would cost naively, and a final pair of runs charges the
failure detector itself: heartbeat sweeps paid through the radios, with the
heartbeat period trading standing bits against how long crashed sensors'
stale summaries linger in the answers.
"""

from __future__ import annotations

from repro import (
    ContinuousQueryEngine,
    CountQuery,
    FaultEngine,
    HeartbeatDetector,
    MedianQuery,
    SensorNetwork,
    TreeRepair,
    run_faulty_stream,
)
from repro.analysis.report import format_table
from repro.workloads import DriftStream, crash_storm_script, regional_outage_script

NUM_NODES = 400
EPOCHS = 12
DOMAIN = 1 << 16
EPSILON = 0.1
STORM_EPOCH = 3
OUTAGE_EPOCH = 7
REJOIN_EPOCH = 10


def build_engine(strategy: str):
    network = SensorNetwork.from_items(
        [0] * NUM_NODES, topology="random_geometric", seed=0, degree_bound=None
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=EPSILON)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN, compression=256))
    script = crash_storm_script(
        network.node_ids(),
        epoch=STORM_EPOCH,
        fraction=0.10,
        seed=1,
        rejoin_epoch=REJOIN_EPOCH,
    ).merge(
        regional_outage_script(network.graph, epoch=OUTAGE_EPOCH, radius=2, seed=2)
    )
    faults = FaultEngine(network, script=script, repair=TreeRepair(strategy=strategy))
    return engine, faults


def main() -> None:
    engine, faults = build_engine("incremental")
    stream = DriftStream(NUM_NODES, max_value=DOMAIN, seed=3, drift_fraction=0.03)
    trace = run_faulty_stream(engine, stream, faults, epochs=EPOCHS)

    rows = []
    for record in trace:
        event = ""
        if record.epoch == STORM_EPOCH:
            event = "10% crash storm"
        elif record.epoch == OUTAGE_EPOCH:
            event = "regional outage"
        elif record.epoch == REJOIN_EPOCH:
            event = "casualties rejoin"
        rows.append(
            [
                record.epoch,
                event,
                record.attached,
                record.reparented,
                record.repair_bits,
                record.query_bits,
                record.answers["count"],
                record.truths.get("count", ""),
                round(record.errors.get("median", 0.0), 1),
            ]
        )
    print(format_table(
        [
            "epoch",
            "event",
            "attached",
            "re-parented",
            "repair bits",
            "query bits",
            "COUNT",
            "truth",
            "median rank err",
        ],
        rows,
        title="Incremental repair + delta re-sync (400-node geometric field)",
    ))
    print()
    print(
        f"median rank-error budget: "
        f"{engine.error_bounds()['median']:.1f} items "
        f"(eps = {EPSILON}, q-digest compression 256)"
    )

    naive_engine, naive_faults = build_engine("rebuild")
    naive_stream = DriftStream(
        NUM_NODES, max_value=DOMAIN, seed=3, drift_fraction=0.03
    )
    naive_trace = run_faulty_stream(
        naive_engine, naive_stream, naive_faults, epochs=EPOCHS
    )

    print()
    print(format_table(
        ["policy", "fault-epoch bits", "repair bits", "total bits", "rebuilds"],
        [
            [
                "incremental repair",
                trace.fault_epoch_bits,
                trace.total_repair_bits,
                trace.total_bits,
                trace.rebuild_count,
            ],
            [
                "rebuild + recompute",
                naive_trace.fault_epoch_bits,
                naive_trace.total_repair_bits,
                naive_trace.total_bits,
                naive_trace.rebuild_count,
            ],
        ],
        title="Surviving the same faults, two ways",
    ))
    savings = naive_trace.fault_epoch_bits / max(1, trace.fault_epoch_bits)
    print()
    print(f"incremental repair spends {savings:.1f}x fewer bits on fault epochs")

    # ------------------------------------------------------------------ #
    # The cost of knowing: charge the failure detector instead of wishing
    # ------------------------------------------------------------------ #
    print()
    rows = []
    for period in (1, 4):
        paid_engine, paid_faults = build_engine("incremental")
        paid_faults.detector = HeartbeatDetector(period=period)
        paid_stream = DriftStream(
            NUM_NODES, max_value=DOMAIN, seed=3, drift_fraction=0.03
        )
        paid_trace = run_faulty_stream(
            paid_engine, paid_stream, paid_faults, epochs=EPOCHS
        )
        rows.append([
            period,
            paid_trace.total_detection_bits,
            round(paid_trace.mean_detection_latency, 2),
            round(paid_trace.max_answer_error("count"), 1),
            paid_trace.total_repair_bits,
        ])
    print(format_table(
        ["period", "detect bits", "mean latency", "max COUNT err", "repair bits"],
        rows,
        title="Heartbeat-charged runs: the oracle's free knowledge, paid for",
    ))
    print()
    print(
        "period 1 detects instantly and pays every epoch; period 4 pays a "
        "quarter of the bits\nbut answers with stale zombie summaries until "
        "the next sweep notices the silence."
    )


if __name__ == "__main__":
    main()
