"""Fault-tolerance engine: crash/churn injection and self-healing trees.

The aggregate protocols (and the streaming engine built on them) assume the
spanning tree constructed at epoch 0 survives forever.  Real sensor fields do
not cooperate: nodes crash, batteries die, animals chew through links, whole
regions wash out, and some of the casualties later come back.  This
subpackage makes the simulator model that — and makes the system *survive*
it at a measured, minimised cost:

* :mod:`repro.faults.events` — the fault vocabulary (:class:`NodeCrash`,
  :class:`NodeRejoin`, :class:`LinkDrop`, :class:`LinkRestore`,
  :class:`RegionalOutage`) and :class:`FaultScript`, a deterministic
  epoch-indexed schedule of events;
* :mod:`repro.faults.repair` — :class:`TreeRepair`, the self-healing layer:
  orphaned subtrees re-attach *as units* through local adoption handshakes
  (parent pointers patched along the re-rooting path only), falling back to a
  full BFS rebuild when the estimated incremental cost exceeds a threshold;
* :mod:`repro.faults.engine` — :class:`FaultEngine`, which injects scripted
  and stochastic events into a running
  :class:`~repro.network.SensorNetwork` and drives repair;
* :mod:`repro.faults.detection` — :class:`HeartbeatDetector`, charging the
  *knowledge* of failures: per-epoch heartbeat bits through the radio
  models, real detection latency (crashes stay silent zombies until a sweep
  misses their liveness bit), and a latency-vs-bits trade-off governed by
  the heartbeat period;
* :mod:`repro.faults.election` — :class:`RootElection`, charged root
  fail-over: when a :class:`RootCrash` kills the query node, the highest
  surviving id is elected over the alive component (candidate convergecast
  + winner flood + re-rooting pointer flips, billed under
  ``faults:election``), the tree re-roots at the winner and the streaming
  layer migrates its caches along the reversed root path;
* :mod:`repro.faults.trace` — :class:`FaultTrace`, the per-epoch record of
  repair bits/messages/energy and answer accuracy under failure;
* :mod:`repro.faults.runner` — :func:`run_faulty_stream`, which interleaves
  a stream workload, the fault engine and a continuous-query engine so the
  whole stack (inject → repair → delta-resync → answer) runs per epoch.

Quick start::

    from repro import ContinuousQueryEngine, CountQuery, SensorNetwork
    from repro.faults import FaultEngine, TreeRepair, run_faulty_stream
    from repro.workloads import DriftStream
    from repro.workloads.faults import crash_storm_script

    network = SensorNetwork.from_items([0] * 400, topology="grid")
    engine = ContinuousQueryEngine(network, epsilon=0.1)
    engine.register("count", CountQuery())
    script = crash_storm_script(network.node_ids(), epoch=3, fraction=0.1)
    faults = FaultEngine(network, script=script, repair=TreeRepair())
    trace = run_faulty_stream(
        engine, DriftStream(num_nodes=400, seed=0), faults, epochs=8
    )
    print(trace.total_repair_bits, trace.max_answer_error("count"))
"""

from repro.faults.detection import HEARTBEAT_BITS, HeartbeatDetector
from repro.faults.election import ElectionResult, RootElection
from repro.faults.engine import FaultEngine, FaultReport
from repro.faults.events import (
    FaultEvent,
    FaultScript,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    RootCrash,
)
from repro.faults.repair import REPAIR_STRATEGIES, RepairResult, TreeRepair
from repro.faults.runner import run_faulty_stream
from repro.faults.trace import FaultEpochRecord, FaultTrace

__all__ = [
    "HEARTBEAT_BITS",
    "HeartbeatDetector",
    "ElectionResult",
    "RootElection",
    "FaultEngine",
    "FaultReport",
    "FaultEvent",
    "FaultScript",
    "NodeCrash",
    "NodeRejoin",
    "LinkDrop",
    "LinkRestore",
    "RegionalOutage",
    "RootCrash",
    "REPAIR_STRATEGIES",
    "RepairResult",
    "TreeRepair",
    "run_faulty_stream",
    "FaultEpochRecord",
    "FaultTrace",
]
