"""TAG-style tree aggregates: MIN, MAX, COUNT, SUM, AVERAGE.

These are the aggregates the TAG paper identifies as efficiently computable on
a spanning tree, and the paper's Fact 2.1: communication complexity
``O(log N)`` bits per node, space ``O(log N)``, constant processing per item.

Every protocol follows the same two-phase structure:

1. a tiny broadcast announcing the query (a constant-size opcode), and
2. a convergecast of partial aggregates whose wire size is one value
   (``O(log N)`` bits since values are polynomial in N).
"""

from __future__ import annotations

from typing import Callable

from repro._util.bits import fixed_width_bits, varint_bits
from repro.exceptions import EmptyNetworkError
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast

# Size of the query-announcement broadcast: an opcode identifying the
# aggregate.  Constant, as in Fact 2.1.
_REQUEST_BITS = 4


def _value_size(domain_max: int | None) -> Callable[[int | None], int]:
    """Wire size of one partial aggregate value."""

    def size(value: int | None) -> int:
        if value is None:
            return 1  # an explicit "no data" marker
        if domain_max is not None:
            return fixed_width_bits(domain_max) + 1
        return varint_bits(int(value)) + 1

    return size


class _ExtremumProtocol:
    """Shared implementation of MIN and MAX."""

    def __init__(
        self,
        pick: Callable[[int, int], int],
        name: str,
        domain_max: int | None = None,
        view: ItemView = raw_items,
    ) -> None:
        self._pick = pick
        self._name = name
        self._domain_max = domain_max
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        with MeteredRun(network) as metered:
            broadcast(network, {"query": self._name}, _REQUEST_BITS, protocol=self._name)

            def local(node: SensorNode) -> int | None:
                values = list(self._view(node))
                if not values:
                    return None
                result = values[0]
                for value in values[1:]:
                    result = self._pick(result, value)
                return result

            def combine(a: int | None, b: int | None) -> int | None:
                if a is None:
                    return b
                if b is None:
                    return a
                return self._pick(a, b)

            answer = convergecast(
                network,
                local,
                combine,
                _value_size(self._domain_max),
                protocol=self._name,
            )
            if answer is None:
                raise EmptyNetworkError(
                    f"{self._name}: no node holds any item matching the view"
                )
        return metered.result(answer)


class MinProtocol(_ExtremumProtocol):
    """Compute min(X) over the tree (Fact 2.1)."""

    def __init__(self, domain_max: int | None = None, view: ItemView = raw_items) -> None:
        super().__init__(min, "MIN", domain_max=domain_max, view=view)


class MaxProtocol(_ExtremumProtocol):
    """Compute max(X) over the tree (Fact 2.1)."""

    def __init__(self, domain_max: int | None = None, view: ItemView = raw_items) -> None:
        super().__init__(max, "MAX", domain_max=domain_max, view=view)


class CountProtocol:
    """Compute |X| (with multiplicities) over the tree (Fact 2.1)."""

    def __init__(self, view: ItemView = raw_items) -> None:
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        with MeteredRun(network) as metered:
            broadcast(network, {"query": "COUNT"}, _REQUEST_BITS, protocol="COUNT")
            answer = convergecast(
                network,
                lambda node: len(list(self._view(node))),
                lambda a, b: a + b,
                lambda value: varint_bits(int(value)),
                protocol="COUNT",
            )
        return metered.result(answer)


class SumProtocol:
    """Compute the sum of all items over the tree (Fact 2.1)."""

    def __init__(self, view: ItemView = raw_items) -> None:
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        with MeteredRun(network) as metered:
            broadcast(network, {"query": "SUM"}, _REQUEST_BITS, protocol="SUM")
            answer = convergecast(
                network,
                lambda node: sum(self._view(node)),
                lambda a, b: a + b,
                lambda value: varint_bits(int(value)),
                protocol="SUM",
            )
        return metered.result(answer)


class AverageProtocol:
    """Compute the mean of all items (as a float) over the tree (Fact 2.1).

    Partial aggregates are (sum, count) pairs, as in TAG.
    """

    def __init__(self, view: ItemView = raw_items) -> None:
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        with MeteredRun(network) as metered:
            broadcast(network, {"query": "AVG"}, _REQUEST_BITS, protocol="AVG")

            def local(node: SensorNode) -> tuple[int, int]:
                values = list(self._view(node))
                return sum(values), len(values)

            def combine(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
                return a[0] + b[0], a[1] + b[1]

            total, count = convergecast(
                network,
                local,
                combine,
                lambda pair: varint_bits(int(pair[0])) + varint_bits(int(pair[1])),
                protocol="AVG",
            )
            if count == 0:
                raise EmptyNetworkError("AVERAGE: the network holds no items")
            answer = total / count
        return metered.result(answer)
