"""repro — reproduction of Patt-Shamir's sensor-network aggregate queries.

This package reproduces, as a runnable Python library, the protocols and
claims of:

    Boaz Patt-Shamir, "A note on efficient aggregate queries in sensor
    networks", PODC 2004 (preliminary version); Theoretical Computer Science
    370 (2007) 254-264 (full version).

Quick start::

    from repro import SensorNetwork, DeterministicMedianProtocol

    readings = [17, 4, 23, 8, 15, 42, 16, 9, 30]
    network = SensorNetwork.from_items(readings, topology="grid")
    result = DeterministicMedianProtocol().run(network)
    print(result.value.median, result.max_node_bits)

The top-level namespace re-exports the pieces most users need: the network
simulator, the deterministic and approximate median protocols, the primitive
aggregation protocols and the verification helpers.  Substrates (sketches,
baselines, workloads, the experiment harness) live in their own subpackages.
"""

from repro.core import (
    ApproximateMedianProtocol,
    ApproximateOrderStatisticProtocol,
    DeterministicMedianProtocol,
    DeterministicOrderStatisticProtocol,
    PolyloglogMedianProtocol,
    RepetitionPolicy,
    is_approximate_order_statistic,
    is_median,
    is_order_statistic,
    rank,
    reference_median,
    reference_order_statistic,
)
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    EmptyNetworkError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.network import CommunicationLedger, EnergyModel, SensorNetwork
from repro.protocols import (
    ApproxCountProtocol,
    AverageProtocol,
    CountPredicateProtocol,
    CountProtocol,
    LessThanPredicate,
    MaxProtocol,
    MinProtocol,
    SumProtocol,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximateMedianProtocol",
    "ApproximateOrderStatisticProtocol",
    "DeterministicMedianProtocol",
    "DeterministicOrderStatisticProtocol",
    "PolyloglogMedianProtocol",
    "RepetitionPolicy",
    "is_approximate_order_statistic",
    "is_median",
    "is_order_statistic",
    "rank",
    "reference_median",
    "reference_order_statistic",
    "BudgetExceededError",
    "ConfigurationError",
    "EmptyNetworkError",
    "ProtocolError",
    "ReproError",
    "TopologyError",
    "CommunicationLedger",
    "EnergyModel",
    "SensorNetwork",
    "ApproxCountProtocol",
    "AverageProtocol",
    "CountPredicateProtocol",
    "CountProtocol",
    "LessThanPredicate",
    "MaxProtocol",
    "MinProtocol",
    "SumProtocol",
    "__version__",
]
