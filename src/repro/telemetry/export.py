"""JSONL export/import for telemetry traces and epoch records.

Every telemetry artifact — span traces, metrics dumps, per-epoch records
from :class:`~repro.streaming.StreamingTrace` / :class:`~repro.faults.FaultTrace`
— serializes as JSON Lines: one self-describing JSON object per line, a
``"type"`` field naming the line kind (``span``, ``metrics``, ``epoch``,
``fault_epoch``).  JSONL keeps the files streamable (a crashed run still
yields a readable prefix) and lets ``scripts/telemetry_report.py`` and the
CI artifact pipeline consume them with no schema negotiation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping


def dumps_line(record: Mapping) -> str:
    """One JSONL line (compact separators, sorted keys, no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: str | Path, records: Iterable[Mapping]) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the line count."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with target.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(dumps_line(record))
            handle.write("\n")
            written += 1
    return written


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield each JSONL line of ``path`` as a dict (blank lines skipped)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_jsonl(path: str | Path) -> list[dict]:
    """Read a whole JSONL file into memory."""
    return list(read_jsonl(path))


def split_by_type(records: Iterable[Mapping]) -> dict[str, list[dict]]:
    """Group JSONL records by their ``"type"`` field.

    Lines without a ``type`` land under ``"unknown"`` rather than being
    dropped — a trace reader must never silently lose data.
    """
    groups: dict[str, list[dict]] = {}
    for record in records:
        kind = record.get("type", "unknown")
        groups.setdefault(str(kind), []).append(dict(record))
    return groups
