"""HyperLogLog counting.

HyperLogLog replaces the arithmetic mean of the LogLog registers by a harmonic
mean, improving the relative standard error from ``1.30/sqrt(m)`` to
``1.04/sqrt(m)``.  The paper predates HyperLogLog; it is included as a drop-in
alternative α-counting protocol so the ablation benchmarks can quantify how
much the choice of counting sketch matters for the approximate median.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro._util.bits import bit_width
from repro._util.validation import require_positive
from repro.sketches.hashing import hash64, leading_rank

HYPERLOGLOG_SIGMA_CONSTANT = 1.04


def hyperloglog_alpha(num_registers: int) -> float:
    """Bias-correction constant for the harmonic-mean estimator."""
    if num_registers == 16:
        return 0.673
    if num_registers == 32:
        return 0.697
    if num_registers == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / num_registers)


@dataclass
class HyperLogLogSketch:
    """A HyperLogLog cardinality sketch."""

    num_registers: int = 64
    salt: int = 0
    registers: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.num_registers, "num_registers")
        if self.num_registers & (self.num_registers - 1):
            raise ValueError(
                f"num_registers must be a power of two, got {self.num_registers}"
            )
        if not self.registers:
            self.registers = [0] * self.num_registers
        if len(self.registers) != self.num_registers:
            raise ValueError("register list length does not match num_registers")

    def _add_hash(self, hashed: int) -> None:
        index = hashed & (self.num_registers - 1)
        remainder = hashed >> (self.num_registers.bit_length() - 1)
        rank = leading_rank(remainder, width=64 - (self.num_registers.bit_length() - 1))
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_item(self, value: int) -> None:
        """Add a value by hash — duplicate values collapse (distinct counting)."""
        self._add_hash(hash64(value, salt=self.salt))

    def add_random(self, rng: random.Random) -> None:
        """Add a fresh random contribution (multiset counting)."""
        self._add_hash(rng.getrandbits(64))

    def merge(self, other: "HyperLogLogSketch") -> "HyperLogLogSketch":
        """Register-wise max combination."""
        if other.num_registers != self.num_registers or other.salt != self.salt:
            raise ValueError("incompatible sketches")
        merged = HyperLogLogSketch(num_registers=self.num_registers, salt=self.salt)
        merged.registers = [max(a, b) for a, b in zip(self.registers, other.registers)]
        return merged

    def estimate(self) -> float:
        """Bias-corrected harmonic-mean estimate with small-range correction."""
        m = self.num_registers
        harmonic_sum = sum(2.0 ** (-register) for register in self.registers)
        raw = hyperloglog_alpha(m) * m * m / harmonic_sum
        zero_registers = self.registers.count(0)
        if raw <= 2.5 * m and zero_registers > 0:
            return m * math.log(m / zero_registers)
        return raw

    @property
    def relative_sigma(self) -> float:
        return HYPERLOGLOG_SIGMA_CONSTANT / math.sqrt(self.num_registers)

    def serialized_bits(self, max_expected_count: int = 1 << 30) -> int:
        max_rank = int(math.ceil(math.log2(max(2, max_expected_count)))) + 4
        return self.num_registers * bit_width(max_rank)
