"""The per-tenant split of the shared plan's charged bits.

The shared plan charges the network ledger once per leg — that is the
whole saving — but billing still has to be per tenant.
:class:`TenantLedgerSplit` keeps one **column** of bits per tenant, fed
from two sources:

* each leg's one-time registration broadcast is billed whole to the
  tenant whose admission created the leg (:meth:`charge_direct`);
* each epoch's per-leg traffic is divided over the leg's billing units —
  one ``(tenant, query_name)`` subscription each — by exact integer split
  (:meth:`split_epoch`): with ``B`` bits over ``k`` units, every unit is
  billed ``B // k`` and the first ``B % k`` units in sorted
  ``(tenant, query_name)`` order are billed one extra bit.

**The decomposition invariant**: because every remainder bit lands on
exactly one unit, each recorded amount is distributed *exactly* — no
rounding residue, ever — so the tenant columns always sum to precisely the
bits the shared plan charged the network ledger
(``sum(split.columns().values()) == split.total_bits`` and, through
:meth:`repro.tenancy.MultiTenantEngine.plan_bits`, to the engine's
``stream:*`` ledger keys).  The randomized suite in ``tests/test_tenancy.py``
asserts this equality per epoch under faults, losses and both execution
paths.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError


class TenantLedgerSplit:
    """Per-tenant bit columns that sum exactly to the shared plan's bits."""

    def __init__(self) -> None:
        self._columns: dict[str, int] = {}
        self._per_leg: dict[str, dict[str, int]] = {}
        self._total = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def charge_direct(self, tenant: str, leg: str, bits: int) -> None:
        """Bill ``bits`` of ``leg`` traffic entirely to one tenant.

        Used for the costs one registration *caused* rather than shares:
        the leg's announcement broadcast.
        """
        if bits < 0:
            raise ConfigurationError(f"bits must be non-negative, got {bits}")
        if bits == 0:
            return
        self._columns[tenant] = self._columns.get(tenant, 0) + bits
        leg_column = self._per_leg.setdefault(leg, {})
        leg_column[tenant] = leg_column.get(tenant, 0) + bits
        self._total += bits

    def split_epoch(
        self,
        leg_bits: Mapping[str, int],
        subscriptions: Mapping[str, Sequence[tuple[str, str]]],
    ) -> dict[str, int]:
        """Divide one epoch's per-leg bits over each leg's billing units.

        Returns this epoch's per-tenant shares (tenants billed zero are
        omitted).  Every leg's bits are distributed exactly — see the
        module docstring for the quotient/remainder rule.
        """
        epoch_shares: dict[str, int] = {}
        for leg, bits in leg_bits.items():
            if bits < 0:
                raise ConfigurationError(
                    f"leg {leg!r} bits must be non-negative, got {bits}"
                )
            if bits == 0:
                continue
            units = sorted(subscriptions.get(leg, ()))
            if not units:
                raise ConfigurationError(
                    f"leg {leg!r} charged {bits} bits but has no subscribers"
                )
            share, remainder = divmod(bits, len(units))
            leg_column = self._per_leg.setdefault(leg, {})
            for index, (tenant, _query_name) in enumerate(units):
                billed = share + (1 if index < remainder else 0)
                if billed == 0:
                    continue
                epoch_shares[tenant] = epoch_shares.get(tenant, 0) + billed
                self._columns[tenant] = self._columns.get(tenant, 0) + billed
                leg_column[tenant] = leg_column.get(tenant, 0) + billed
            self._total += bits
        return epoch_shares

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Every bit recorded so far (equals the column sum, always)."""
        return self._total

    def columns(self) -> dict[str, int]:
        """Tenant -> total billed bits."""
        return dict(self._columns)

    def column(self, tenant: str) -> int:
        """One tenant's total billed bits (zero if never billed)."""
        return self._columns.get(tenant, 0)

    def leg_breakdown(self, tenant: str) -> dict[str, int]:
        """Leg -> bits billed to ``tenant`` (registration bits included)."""
        return {
            leg: column[tenant]
            for leg, column in self._per_leg.items()
            if column.get(tenant)
        }

    def decomposition_holds(self) -> bool:
        """The invariant itself: columns sum exactly to the recorded total."""
        return sum(self._columns.values()) == self._total
