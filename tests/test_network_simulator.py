"""Tests for the SensorNetwork simulator and the round engine."""

import pytest

from repro.exceptions import ConfigurationError, EmptyNetworkError, TopologyError
from repro.network.radio import LossyRadio
from repro.network.scheduler import RoundEngine
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology, star_topology


class TestConstruction:
    def test_from_items_assigns_one_item_per_node(self):
        network = SensorNetwork.from_items([5, 6, 7, 8], topology=line_topology(4))
        assert network.num_nodes == 4
        assert [node.items for node in network.nodes()] == [[5], [6], [7], [8]]

    def test_from_items_by_topology_name(self):
        network = SensorNetwork.from_items(list(range(9)), topology="grid")
        assert network.num_nodes == 9

    def test_from_items_empty_rejected(self):
        with pytest.raises(EmptyNetworkError):
            SensorNetwork.from_items([], topology="line")

    def test_topology_smaller_than_items_rejected(self):
        with pytest.raises(ConfigurationError):
            SensorNetwork.from_items([1, 2, 3], topology=line_topology(2))

    def test_unknown_root_rejected(self):
        with pytest.raises(TopologyError):
            SensorNetwork(line_topology(3), root=7)

    def test_root_flag_set(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        assert network.root.is_root
        assert not network.node(1).is_root

    def test_ground_truth_accessors(self):
        items = [4, 9, 1, 7]
        network = SensorNetwork.from_items(items, topology=line_topology(4))
        assert sorted(network.all_items()) == sorted(items)
        assert network.total_items() == 4
        assert network.max_item() == 9

    def test_assign_and_clear_items(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        network.assign_items({0: [10, 11], 2: []})
        assert network.node(0).items == [10, 11]
        assert network.node(2).items == []
        assert network.node(1).items == [2]
        network.clear_items()
        assert network.total_items() == 0

    def test_unknown_node_lookup_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        with pytest.raises(ConfigurationError):
            network.node(5)


class TestTreeManagement:
    def test_default_tree_is_degree_bounded(self):
        network = SensorNetwork.from_items(list(range(20)), topology="single_hop")
        assert network.tree.max_degree() <= 3

    def test_rebuild_tree_unbounded(self):
        network = SensorNetwork.from_items(list(range(20)), topology="single_hop")
        network.rebuild_tree(degree_bound=None)
        assert network.tree.max_degree() == 19

    def test_rebuild_tree_keeps_bound_when_omitted(self):
        network = SensorNetwork.from_items(list(range(10)), topology="single_hop")
        original_bound = network.degree_bound
        network.rebuild_tree()
        assert network.degree_bound == original_bound

    def test_star_tree_height(self):
        network = SensorNetwork.from_items(
            list(range(8)), topology=star_topology(8), degree_bound=None
        )
        assert network.tree.height == 1


class TestSend:
    def test_send_charges_both_ends(self):
        network = SensorNetwork.from_items([1, 2], topology=line_topology(2))
        network.send(0, 1, "hello", 64, protocol="TEST")
        assert network.ledger.node_bits(0) == 64
        assert network.ledger.node_bits(1) == 64
        assert network.ledger.per_protocol_bits() == {"TEST": 64}

    def test_send_requires_graph_edge(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        with pytest.raises(TopologyError):
            network.send(0, 2, "x", 8)

    def test_send_up_and_down(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        assert network.send_up(0, "x", 8) is None  # root has no parent
        assert network.send_up(1, "x", 8) is not None
        downs = network.send_down(0, "y", 8)
        assert len(downs) == len(network.tree.children[0])

    def test_lossy_radio_inflates_charges(self):
        reliable = SensorNetwork.from_items([1, 2], topology=line_topology(2))
        lossy = SensorNetwork.from_items(
            [1, 2], topology=line_topology(2), radio=LossyRadio(loss_rate=0.6, seed=4)
        )
        for _ in range(30):
            reliable.send(0, 1, "x", 10)
            lossy.send(0, 1, "x", 10)
        assert lossy.ledger.node_bits(0) > reliable.ledger.node_bits(0)

    def test_reset_ledger(self):
        network = SensorNetwork.from_items([1, 2], topology=line_topology(2))
        network.send(0, 1, "x", 10)
        network.reset_ledger()
        assert network.ledger.total_bits == 0

    def test_measure_helper(self):
        network = SensorNetwork.from_items([1, 2], topology=line_topology(2))

        def probe(net):
            net.send(0, 1, "x", 12)
            return "done"

        result, snapshot = network.measure(probe)
        assert result == "done"
        assert snapshot.total_bits == 12


class TestRoundEngine:
    def test_flood_reaches_all_nodes(self):
        network = SensorNetwork.from_items([0] * 9, topology=grid_topology(3, 3))
        reached = {0}

        def handler(net, node_id, inbox):
            if inbox or node_id == 0:
                reached.add(node_id)
                return {
                    neighbor: ("token", 8)
                    for neighbor in net.graph.neighbors(node_id)
                    if neighbor not in reached
                }
            return {}

        engine = RoundEngine(network, protocol_name="FLOOD")
        outcome = engine.run(handler, max_rounds=10)
        assert reached == set(network.node_ids())
        assert outcome.rounds_executed == 10

    def test_stop_condition_ends_early(self):
        network = SensorNetwork.from_items([0, 0], topology=line_topology(2))
        engine = RoundEngine(network)
        outcome = engine.run(
            lambda net, node, inbox: {},
            max_rounds=50,
            stop_condition=lambda net, round_index: round_index >= 2,
        )
        assert outcome.converged
        assert outcome.rounds_executed == 3

    def test_rounds_are_charged_to_ledger(self):
        network = SensorNetwork.from_items([0, 0], topology=line_topology(2))
        RoundEngine(network).run(lambda net, node, inbox: {}, max_rounds=5)
        assert network.ledger.rounds == 5
