"""Study runners for the experiments of DESIGN.md (E1–E13).

Each function runs one experiment family and returns plain records that the
``benchmarks/`` targets print as tables (and the test-suite sanity-checks at
small sizes).  The functions are deliberately free of pytest / benchmark
dependencies so they can also be driven from the example scripts.

Multi-scenario studies over these runners are expressed declaratively
through the sweep harness (:mod:`repro.sweeps`, ``docs/SWEEPS.md``): a
spec's cells call straight into these functions (``repro.sweeps.cells``),
so a sweep cell and a hand-written call are the same computation — the
harness only adds matrix expansion, caching and parallel execution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from operator import add
from typing import Sequence

from repro.analysis.metrics import RunRecord, median_accuracy
from repro.baselines import (
    GKMedianProtocol,
    GossipMedianProtocol,
    NaiveShipAllMedianProtocol,
    QDigestMedianProtocol,
    SamplingMedianProtocol,
)
from repro.core.apx_median import ApproximateMedianProtocol
from repro.core.apx_median2 import PolyloglogMedianProtocol
from repro.core.definitions import (
    is_approximate_order_statistic,
    reference_median,
)
from repro.core.median import DeterministicMedianProtocol
from repro.core.order_statistics import DeterministicOrderStatisticProtocol
from repro.core.rep_count import RepetitionPolicy
from repro.exceptions import ConfigurationError
from repro.distinct import ApproxDistinctCountProtocol, ExactDistinctCountProtocol
from repro.core.definitions import rank
from repro.faults.detection import HeartbeatDetector, detector_from_config
from repro.faults.engine import FaultEngine
from repro.faults.repair import TreeRepair
from repro.faults.runner import run_faulty_stream
from repro.faults.trace import FaultTrace
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import (
    AverageProtocol,
    CountProtocol,
    MaxProtocol,
    MinProtocol,
    SumProtocol,
)
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import (
    CountQuery,
    DistinctCountQuery,
    MedianQuery,
    PredicateCountQuery,
    QuantileQuery,
    StandingQuery,
)
from repro.streaming.recompute import RecomputeEngine
from repro.tenancy import MultiTenantEngine
from repro.streaming.trace import StreamingTrace
from repro.network.topology import build_topology
from repro.workloads.faults import (
    FAULT_SCENARIOS,
    churn_script,
    crash_storm_script,
    link_storm_script,
    regional_outage_script,
    root_failover_script,
)
from repro.workloads.generators import generate_workload
from repro.workloads.streams import DriftStream, make_stream


def default_domain(num_items: int) -> int:
    """The paper's standing assumption: values are polynomial in N (here N²)."""
    return max(4, num_items * num_items)


def build_network(
    num_items: int,
    workload: str = "uniform",
    topology: str = "grid",
    domain_max: int | None = None,
    seed: int = 0,
    degree_bound: int | None = 3,
) -> tuple[SensorNetwork, list[int], int]:
    """Build a seeded network for one experiment point.

    Returns ``(network, items, domain_max)``.
    """
    domain = domain_max if domain_max is not None else default_domain(num_items)
    items = generate_workload(workload, num_items, max_value=domain, seed=seed)
    network = SensorNetwork.from_items(
        items, topology=topology, seed=seed, degree_bound=degree_bound
    )
    return network, items, domain


def _record(
    protocol: str,
    workload: str,
    topology: str,
    network: SensorNetwork,
    items: list[int],
    domain: int,
    answer: float,
    result,
    **extra,
) -> RunRecord:
    return RunRecord(
        protocol=protocol,
        workload=workload,
        topology=topology,
        num_nodes=network.num_nodes,
        num_items=len(items),
        domain_max=domain,
        answer=answer,
        true_median=float(reference_median(items)),
        max_node_bits=result.max_node_bits,
        total_bits=result.total_bits,
        messages=result.messages,
        rounds=result.rounds,
        extra=extra,
    )


# --------------------------------------------------------------------------- #
# E1 — primitive aggregates (Fact 2.1)
# --------------------------------------------------------------------------- #
def run_primitive_aggregates_sweep(
    sizes: Sequence[int],
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
) -> list[RunRecord]:
    """Per-node cost of MIN / MAX / COUNT / SUM / AVG as N grows."""
    records: list[RunRecord] = []
    for num_items in sizes:
        network, items, domain = build_network(
            num_items, workload=workload, topology=topology, seed=seed
        )
        protocols = {
            "MIN": MinProtocol(domain_max=domain),
            "MAX": MaxProtocol(domain_max=domain),
            "COUNT": CountProtocol(),
            "SUM": SumProtocol(),
            "AVG": AverageProtocol(),
        }
        for name, protocol in protocols.items():
            network.reset_ledger()
            result = protocol.run(network)
            answer = float(result.value)
            records.append(
                _record(name, workload, topology, network, items, domain, answer, result)
            )
    return records


# --------------------------------------------------------------------------- #
# E2 — approximate counting (Fact 2.2)
# --------------------------------------------------------------------------- #
def run_apx_count_sweep(
    sizes: Sequence[int],
    register_counts: Sequence[int] = (16, 64, 256),
    trials: int = 5,
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
) -> list[RunRecord]:
    """Accuracy and per-node bits of APX_COUNT versus N and sketch size m."""
    records: list[RunRecord] = []
    for num_items in sizes:
        network, items, domain = build_network(
            num_items, workload=workload, topology=topology, seed=seed
        )
        for num_registers in register_counts:
            protocol = ApproxCountProtocol(
                num_registers=num_registers, seed=seed, max_expected_count=4 * num_items
            )
            errors = []
            last_result = None
            for _ in range(trials):
                network.reset_ledger()
                last_result = protocol.run(network)
                errors.append(
                    abs(last_result.value.estimate - num_items) / num_items
                )
            records.append(
                _record(
                    f"APX_COUNT(m={num_registers})",
                    workload,
                    topology,
                    network,
                    items,
                    domain,
                    last_result.value.estimate,
                    last_result,
                    mean_relative_error=sum(errors) / len(errors),
                    predicted_sigma=last_result.value.relative_sigma,
                    trials=trials,
                )
            )
    return records


# --------------------------------------------------------------------------- #
# E3 — deterministic exact median (Theorem 3.2)
# --------------------------------------------------------------------------- #
def run_exact_median_sweep(
    sizes: Sequence[int],
    topologies: Sequence[str] = ("grid",),
    workloads: Sequence[str] = ("uniform",),
    seed: int = 0,
) -> list[RunRecord]:
    """Correctness and per-node bits of Fig. 1 as N grows."""
    records: list[RunRecord] = []
    for topology in topologies:
        for workload in workloads:
            for num_items in sizes:
                network, items, domain = build_network(
                    num_items, workload=workload, topology=topology, seed=seed
                )
                result = DeterministicMedianProtocol(domain_max=domain).run(network)
                accuracy = median_accuracy(items, result.value.median)
                records.append(
                    _record(
                        "MEDIAN",
                        workload,
                        topology,
                        network,
                        items,
                        domain,
                        float(result.value.median),
                        result,
                        exact=accuracy.exact,
                        probes=result.value.probes,
                    )
                )
    return records


# --------------------------------------------------------------------------- #
# E4 — deterministic order statistics (Section 3.4)
# --------------------------------------------------------------------------- #
def run_order_statistic_sweep(
    num_items: int,
    quantiles: Sequence[float] = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
) -> list[RunRecord]:
    """Exact k-order statistics across the quantile range."""
    records: list[RunRecord] = []
    network, items, domain = build_network(
        num_items, workload=workload, topology=topology, seed=seed
    )
    for quantile in quantiles:
        network.reset_ledger()
        result = DeterministicOrderStatisticProtocol(
            quantile=quantile, domain_max=domain
        ).run(network)
        records.append(
            _record(
                f"OS(q={quantile})",
                workload,
                topology,
                network,
                items,
                domain,
                float(result.value.value),
                result,
                quantile=quantile,
                probes=result.value.probes,
            )
        )
    return records


# --------------------------------------------------------------------------- #
# E5 — approximate median success probability (Theorems 4.5 / 4.6)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ApproxMedianTrialSummary:
    """Aggregate of repeated APX_MEDIAN runs on one input."""

    num_items: int
    epsilon: float
    num_registers: int
    trials: int
    success_rate: float
    mean_rank_error: float
    mean_value_error: float
    mean_max_node_bits: float
    alpha_guarantee: float
    beta_guarantee: float


def run_apx_median_trials(
    num_items: int,
    trials: int = 20,
    epsilon: float = 0.2,
    num_registers: int = 256,
    alpha_slack: float = 1.0,
    beta_slack: float = 0.05,
    repetition_policy: RepetitionPolicy | None = None,
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
) -> ApproxMedianTrialSummary:
    """Repeat APX_MEDIAN and measure how often the output is an (α, β)-median.

    The success criterion uses ``α = alpha_slack · 3σ`` (the theorem's
    guarantee scaled by ``alpha_slack``) and ``β = beta_slack`` — the latter is
    looser than the theorem's 1/N because the practical repetition policy runs
    far fewer repetitions than the paper's constants (see DESIGN.md §5).
    """
    network, items, domain = build_network(
        num_items, workload=workload, topology=topology, seed=seed
    )
    successes = 0
    rank_errors = []
    value_errors = []
    bits = []
    alpha_guarantee = 0.0
    beta_guarantee = 0.0
    for trial in range(trials):
        network.reset_ledger()
        protocol = ApproximateMedianProtocol(
            epsilon=epsilon,
            num_registers=num_registers,
            repetition_policy=repetition_policy,
            seed=seed * 1_000 + trial,
        )
        result = protocol.run(network)
        outcome = result.value
        alpha_guarantee = outcome.alpha_guarantee
        beta_guarantee = outcome.beta_guarantee
        alpha = alpha_slack * outcome.alpha_guarantee
        if is_approximate_order_statistic(
            items, len(items) / 2.0, outcome.value, alpha=alpha, beta=beta_slack
        ):
            successes += 1
        accuracy = median_accuracy(items, outcome.value)
        rank_errors.append(accuracy.rank_error)
        value_errors.append(accuracy.value_error)
        bits.append(result.max_node_bits)
    return ApproxMedianTrialSummary(
        num_items=num_items,
        epsilon=epsilon,
        num_registers=num_registers,
        trials=trials,
        success_rate=successes / trials,
        mean_rank_error=sum(rank_errors) / trials,
        mean_value_error=sum(value_errors) / trials,
        mean_max_node_bits=sum(bits) / trials,
        alpha_guarantee=alpha_guarantee,
        beta_guarantee=beta_guarantee,
    )


# --------------------------------------------------------------------------- #
# E6 — polyloglog median scaling (Theorem 4.7 / Corollary 4.8)
# --------------------------------------------------------------------------- #
def run_polyloglog_sweep(
    sizes: Sequence[int],
    beta: float = 1.0 / 16.0,
    epsilon: float = 0.25,
    num_registers: int = 64,
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
) -> list[RunRecord]:
    """Per-node bits and value error of APX_MEDIAN2 as N grows."""
    records: list[RunRecord] = []
    for num_items in sizes:
        network, items, domain = build_network(
            num_items, workload=workload, topology=topology, seed=seed
        )
        protocol = PolyloglogMedianProtocol(
            beta=beta, epsilon=epsilon, num_registers=num_registers, seed=seed
        )
        result = protocol.run(network)
        accuracy = median_accuracy(items, result.value.value)
        records.append(
            _record(
                "APX_MEDIAN2",
                workload,
                topology,
                network,
                items,
                domain,
                float(result.value.value),
                result,
                beta=beta,
                value_error=accuracy.value_error,
                rank_error=accuracy.rank_error,
                stages=len(result.value.stages),
            )
        )
    return records


# --------------------------------------------------------------------------- #
# E7 — COUNT DISTINCT: exact vs approximate (Theorem 5.1)
# --------------------------------------------------------------------------- #
def run_count_distinct_sweep(
    sizes: Sequence[int],
    num_registers: int = 64,
    topology: str = "line",
    seed: int = 0,
) -> list[RunRecord]:
    """Exact (linear) versus approximate (loglog) distinct counting.

    Uses a line topology with all-distinct values — the shape of the
    Set-Disjointness embedding — so the linear traffic through the middle of
    the line is exactly the quantity Theorem 5.1 lower-bounds.
    """
    records: list[RunRecord] = []
    for num_items in sizes:
        domain = default_domain(num_items)
        items = generate_workload("sequential", num_items, max_value=domain, seed=seed)
        network = SensorNetwork.from_items(items, topology=topology, seed=seed)
        true_distinct = len(set(items))

        exact_result = ExactDistinctCountProtocol(domain_max=domain).run(network)
        records.append(
            _record(
                "COUNT_DISTINCT(exact)",
                "sequential",
                topology,
                network,
                items,
                domain,
                float(exact_result.value),
                exact_result,
                true_distinct=true_distinct,
            )
        )
        network.reset_ledger()
        approx_result = ApproxDistinctCountProtocol(
            num_registers=num_registers, seed=seed
        ).run(network)
        records.append(
            _record(
                f"COUNT_DISTINCT(loglog,m={num_registers})",
                "sequential",
                topology,
                network,
                items,
                domain,
                approx_result.value.estimate,
                approx_result,
                true_distinct=true_distinct,
                relative_error=abs(approx_result.value.estimate - true_distinct)
                / max(1, true_distinct),
            )
        )
    return records


# --------------------------------------------------------------------------- #
# E8 — baseline comparison
# --------------------------------------------------------------------------- #
def run_baseline_comparison(
    sizes: Sequence[int],
    topology: str = "grid",
    workload: str = "uniform",
    seed: int = 0,
    include_gossip: bool = True,
    apx_registers: int = 64,
) -> list[RunRecord]:
    """All median protocols (paper's and baselines) on the same inputs."""
    records: list[RunRecord] = []
    for num_items in sizes:
        network, items, domain = build_network(
            num_items, workload=workload, topology=topology, seed=seed
        )
        protocols: list[tuple[str, object]] = [
            ("MEDIAN (Fig.1)", DeterministicMedianProtocol(domain_max=domain)),
            (
                "APX_MEDIAN (Fig.2)",
                ApproximateMedianProtocol(
                    epsilon=0.2, num_registers=apx_registers, seed=seed
                ),
            ),
            (
                "APX_MEDIAN2 (Fig.4)",
                PolyloglogMedianProtocol(
                    beta=1.0 / 16.0, epsilon=0.25, num_registers=apx_registers, seed=seed
                ),
            ),
            ("naive ship-all", NaiveShipAllMedianProtocol(domain_max=domain)),
            ("sampling (Nath)", SamplingMedianProtocol(sample_size=32, domain_max=domain)),
            ("GK summary", GKMedianProtocol(epsilon=0.05, domain_max=domain)),
            ("q-digest", QDigestMedianProtocol(compression=32, domain_max=domain)),
        ]
        if include_gossip:
            protocols.append(("gossip push-sum", GossipMedianProtocol(seed=seed)))
        for name, protocol in protocols:
            network.reset_ledger()
            result = protocol.run(network)
            outcome = result.value
            answer = getattr(outcome, "median", None)
            if answer is None:
                answer = getattr(outcome, "value", outcome)
            accuracy = median_accuracy(items, float(answer))
            records.append(
                _record(
                    name,
                    workload,
                    topology,
                    network,
                    items,
                    domain,
                    float(answer),
                    result,
                    exact=accuracy.exact,
                    rank_error=accuracy.rank_error,
                    value_error=accuracy.value_error,
                )
            )
    return records


# --------------------------------------------------------------------------- #
# E9 — ablations
# --------------------------------------------------------------------------- #
def run_repetition_ablation(
    num_items: int,
    caps: Sequence[int] = (1, 2, 4, 8, 16),
    trials: int = 10,
    epsilon: float = 0.2,
    num_registers: int = 64,
    seed: int = 0,
) -> list[ApproxMedianTrialSummary]:
    """Effect of the REP_COUNTP repetition cap on accuracy and cost."""
    summaries = []
    for cap in caps:
        summaries.append(
            run_apx_median_trials(
                num_items,
                trials=trials,
                epsilon=epsilon,
                num_registers=num_registers,
                repetition_policy=RepetitionPolicy.practical(cap=cap),
                seed=seed,
            )
        )
    return summaries


# --------------------------------------------------------------------------- #
# E10 — continuous queries: incremental vs per-epoch recomputation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamingComparison:
    """Outcome of driving both streaming engines through the same stream."""

    workload: str
    num_nodes: int
    epochs: int
    epsilon: float
    incremental_bits: int
    recompute_bits: int
    savings_factor: float
    max_count_error: float
    max_median_rank_error: float
    count_error_budget: float
    median_rank_error_budget: float
    incremental_trace: StreamingTrace
    recompute_trace: StreamingTrace


def _standing_queries(domain: int, compression: int, num_registers: int, seed: int):
    return {
        "count": CountQuery(),
        "median": MedianQuery(universe_size=domain + 1, compression=compression),
        "distinct": DistinctCountQuery(num_registers=num_registers, salt=seed),
        "below_mid": PredicateCountQuery(
            lambda item, mid=domain // 2: item < mid, description=f"x < {domain // 2}"
        ),
    }


def run_streaming_comparison(
    num_nodes: int = 100,
    epochs: int = 50,
    workload: str = "drift",
    epsilon: float = 0.1,
    topology: str = "grid",
    domain_max: int | None = None,
    compression: int = 256,
    num_registers: int = 64,
    seed: int = 0,
    telemetry=None,
    **stream_params,
) -> StreamingComparison:
    """Drive the incremental and naive engines through one identical stream.

    Both engines register the same four standing queries (COUNT, MEDIAN,
    COUNT DISTINCT, COUNTP) over networks with identical topology and
    readings; two same-seed stream instances guarantee identical inputs.  Per
    epoch the incremental answers are checked against the ground truth, so
    the returned maxima certify the ε-approximation empirically.

    ``telemetry`` installs a :class:`~repro.telemetry.TelemetryRecorder` on
    the *incremental* network, so its epochs emit ``stream`` /
    ``convergecast`` spans and the network counters (the naive arm stays
    uninstrumented — it is the baseline, not the subject).
    """
    domain = domain_max if domain_max is not None else 1 << 16
    builds = []
    for _ in range(2):
        network = SensorNetwork.from_items(
            [0] * num_nodes, topology=topology, seed=seed
        )
        network.clear_items()
        builds.append(network)
    incremental_net, recompute_net = builds
    if telemetry is not None:
        incremental_net.telemetry = telemetry
    incremental = ContinuousQueryEngine(incremental_net, epsilon=epsilon)
    naive = RecomputeEngine(recompute_net)
    for name, query in _standing_queries(domain, compression, num_registers, seed).items():
        incremental.register(name, query)
    for name, query in _standing_queries(domain, compression, num_registers, seed).items():
        naive.register(name, query)

    stream_a = make_stream(
        workload, num_nodes, max_value=domain, seed=seed, **stream_params
    )
    stream_b = make_stream(
        workload, num_nodes, max_value=domain, seed=seed, **stream_params
    )
    max_count_error = 0.0
    max_rank_error = 0.0
    count_scale = 1.0
    median_query = incremental.queries()["median"]
    for epoch in range(epochs):
        updates_a = stream_a.initial() if epoch == 0 else stream_a.step(epoch)
        updates_b = stream_b.initial() if epoch == 0 else stream_b.step(epoch)
        record = incremental.advance_epoch(updates_a)
        naive.advance_epoch(updates_b)
        items = incremental_net.all_items()
        if not items:
            continue
        true_count = len(items)
        count_scale = max(count_scale, float(true_count))
        max_count_error = max(
            max_count_error, abs(record.answers["count"] - true_count)
        )
        median_answer = record.answers["median"]
        if median_answer is not None:
            # Absolute rank error of the reported median, in items.
            median_rank = rank(items, median_answer) + 0.5 * sum(
                1 for item in items if item == median_answer
            )
            max_rank_error = max(max_rank_error, abs(median_rank - true_count / 2.0))

    incremental_bits = incremental.trace.total_bits
    recompute_bits = naive.trace.total_bits
    return StreamingComparison(
        workload=workload,
        num_nodes=num_nodes,
        epochs=epochs,
        epsilon=epsilon,
        incremental_bits=incremental_bits,
        recompute_bits=recompute_bits,
        savings_factor=recompute_bits / max(1, incremental_bits),
        max_count_error=max_count_error,
        max_median_rank_error=max_rank_error,
        count_error_budget=epsilon * count_scale,
        median_rank_error_budget=median_query.error_bound(epsilon, count_scale),
        incremental_trace=incremental.trace,
        recompute_trace=naive.trace,
    )


# --------------------------------------------------------------------------- #
# E11 — execution-path scaling: per-edge vs batched wall-clock
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScalingRecord:
    """Wall-clock comparison of the two execution paths at one network size."""

    num_nodes: int
    topology: str
    tree_height: int
    batched_seconds: float
    per_edge_seconds: float | None
    speedup: float | None
    ledgers_identical: bool | None
    total_bits: int
    messages: int


def _scaling_workload(network: SensorNetwork) -> int:
    """One root-initiated round trip: a request broadcast plus a SUM convergecast."""
    broadcast(network, "sum-request", 32, protocol="scaling-request")
    return convergecast(
        network,
        local_value=lambda node: sum(node.items),
        combine=add,
        size_bits=64,
        protocol="scaling-sum",
    )


def run_scaling_study(
    sizes: Sequence[int],
    topology: str = "grid",
    degree_bound: int | None = None,
    per_edge_limit: int = 20_000,
    repeats: int = 1,
    seed: int = 0,
    telemetry=None,
) -> list[ScalingRecord]:
    """E11: time the batched and per-edge execution paths as N grows.

    For each size one network is built and the same broadcast + SUM
    convergecast round trip is executed under both execution modes (best of
    ``repeats``), resetting the ledger and radio in between so both paths see
    identical randomness.  The resulting ledgers are compared field by field
    — the batched backend must be bit-for-bit indistinguishable from the
    per-edge reference.  Above ``per_edge_limit`` nodes only the batched path
    runs (the per-edge path becomes the bottleneck the study exists to show),
    so the sweep can include 100k-node fields.  ``degree_bound`` defaults to
    ``None`` (plain BFS tree) because the bounded-degree re-parenting
    heuristic, not the execution core, dominates build time at scale.
    """
    records: list[ScalingRecord] = []
    for num_nodes in sizes:
        # Build the graph first: generators only approximate the requested
        # size (a grid rounds to the nearest square), and the items must
        # match the actual node count.
        graph = build_topology(topology, num_nodes, seed=seed)
        actual_nodes = graph.number_of_nodes()
        items = generate_workload(
            "uniform",
            actual_nodes,
            max_value=default_domain(min(actual_nodes, 4096)),
            seed=seed,
        )
        network = SensorNetwork.from_items(
            items, topology=graph, seed=seed, degree_bound=degree_bound
        )
        if telemetry is not None:
            # Both execution modes run with the same hooks live, so the
            # relative comparison is unaffected by the instrumentation.
            network.telemetry = telemetry

        def timed(mode: str) -> tuple[float, object]:
            network.execution = mode
            best = math.inf
            snapshot = None
            for _ in range(max(1, repeats)):
                network.reset_ledger()
                started = time.perf_counter()
                _scaling_workload(network)
                elapsed = time.perf_counter() - started
                if elapsed < best:
                    best = elapsed
                snapshot = network.ledger.snapshot()
            return best, snapshot

        batched_seconds, batched_snapshot = timed("batched")
        if num_nodes <= per_edge_limit:
            per_edge_seconds, per_edge_snapshot = timed("per-edge")
            speedup = per_edge_seconds / batched_seconds if batched_seconds else None
            ledgers_identical = per_edge_snapshot == batched_snapshot
        else:
            per_edge_seconds = None
            speedup = None
            ledgers_identical = None
        records.append(
            ScalingRecord(
                num_nodes=network.num_nodes,
                topology=topology,
                tree_height=network.tree.height,
                batched_seconds=batched_seconds,
                per_edge_seconds=per_edge_seconds,
                speedup=speedup,
                ledgers_identical=ledgers_identical,
                total_bits=batched_snapshot.total_bits,
                messages=batched_snapshot.messages,
            )
        )
        if telemetry is not None:
            nodes = str(network.num_nodes)
            telemetry.observe("scaling.batched_s", batched_seconds, nodes=nodes)
            if per_edge_seconds is not None:
                telemetry.observe(
                    "scaling.per_edge_s", per_edge_seconds, nodes=nodes
                )
    return records


def run_degree_bound_ablation(
    num_items: int,
    degree_bounds: Sequence[int | None] = (None, 2, 3, 4, 8),
    topology: str = "star",
    workload: str = "uniform",
    seed: int = 0,
) -> list[RunRecord]:
    """Effect of the spanning-tree degree bound on the per-node cost.

    On hub-heavy topologies an unbounded BFS tree concentrates traffic at the
    hub; the bounded-degree construction spreads it, which is the remark the
    paper makes after Fact 2.1.  On the star the hub is unavoidable — the
    records show the bound is best-effort there.
    """
    records: list[RunRecord] = []
    for degree_bound in degree_bounds:
        network, items, domain = build_network(
            num_items,
            workload=workload,
            topology=topology,
            seed=seed,
            degree_bound=degree_bound,
        )
        result = DeterministicMedianProtocol(domain_max=domain).run(network)
        records.append(
            _record(
                f"MEDIAN(degree_bound={degree_bound})",
                workload,
                topology,
                network,
                items,
                domain,
                float(result.value.median),
                result,
                degree_bound=degree_bound if degree_bound is not None else 0,
                tree_degree=network.tree.max_degree(),
                tree_height=network.tree.height,
            )
        )
    return records


# --------------------------------------------------------------------------- #
# E12 — fault tolerance: incremental repair + delta re-sync vs rebuild-and-
# recompute
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultToleranceComparison:
    """Outcome of driving both repair policies through one fault scenario."""

    scenario: str
    num_nodes: int
    epochs: int
    epsilon: float
    incremental_fault_bits: int
    rebuild_fault_bits: int
    savings_factor: float
    incremental_total_bits: int
    rebuild_total_bits: int
    incremental_repair_bits: int
    rebuild_repair_bits: int
    incremental_max_count_error: float
    rebuild_max_count_error: float
    count_error_budget: float
    incremental_rebuilds: int
    rebuild_rebuilds: int
    incremental_trace: FaultTrace
    rebuild_trace: FaultTrace
    #: Heartbeat traffic per arm when a detector was charged (0 = oracle).
    incremental_detection_bits: int = 0
    rebuild_detection_bits: int = 0
    #: Mean epochs from crash to detection on the incremental arm.
    detection_latency: float = 0.0
    detector_period: int | None = None


def _fault_scenario_script(
    scenario: str,
    graph,
    node_ids: Sequence[int],
    epochs: int,
    storm_epoch: int,
    crash_fraction: float,
    rejoin_epoch: int | None,
    outage_radius: int,
    seed: int,
):
    """Build the scenario's :class:`~repro.faults.FaultScript` for one arm."""
    if scenario == "crash_storm":
        return crash_storm_script(
            node_ids,
            epoch=storm_epoch,
            fraction=crash_fraction,
            seed=seed,
            rejoin_epoch=rejoin_epoch,
        )
    if scenario == "regional_outage":
        return regional_outage_script(
            graph,
            epoch=storm_epoch,
            radius=outage_radius,
            seed=seed,
            rejoin_epoch=rejoin_epoch,
        )
    if scenario == "churn":
        return churn_script(
            node_ids,
            epochs=max(1, epochs - 1),
            churn_rate=crash_fraction,
            start_epoch=1,
            seed=seed,
        )
    if scenario == "link_storm":
        return link_storm_script(
            graph,
            epoch=storm_epoch,
            fraction=crash_fraction,
            seed=seed,
            restore_epoch=rejoin_epoch,
        )
    raise ConfigurationError(
        f"unknown fault scenario {scenario!r}; known: {FAULT_SCENARIOS}"
    )


def run_fault_tolerance_study(
    num_nodes: int = 400,
    epochs: int = 8,
    scenario: str = "crash_storm",
    crash_fraction: float = 0.1,
    storm_epoch: int = 2,
    rejoin_epoch: int | None = 5,
    outage_radius: int = 3,
    epsilon: float = 0.1,
    topology: str = "random_geometric",
    degree_bound: int | None = None,
    drift_fraction: float = 0.02,
    domain_max: int | None = None,
    compute_truth: bool = True,
    seed: int = 0,
    detector_period: "int | HeartbeatDetector | None" = None,
    telemetry=None,
) -> FaultToleranceComparison:
    """E12: measure what surviving faults costs under the two repair policies.

    Two identical networks run the same drifting stream with the same
    standing queries (COUNT and a COUNTP) under the same fault scenario; one
    arm repairs its spanning tree incrementally and re-synchronises only the
    summaries along repaired paths, the other rebuilds the BFS tree from
    scratch and recomputes every summary (the ``strategy="rebuild"``
    policy).  Off fault epochs the two arms behave identically, so the
    comparison is taken over the *fault-epoch* bits — the cost attributable
    to surviving the scenario — while answer accuracy is checked against the
    attached ground truth on every epoch for both arms.

    ``detector_period`` switches both arms from the free oracle detector to
    a charged :class:`~repro.faults.HeartbeatDetector` with that sweep
    period: both repair policies then pay the same heartbeat bill and see
    crashes with the same latency, so the repair-vs-rebuild gap is measured
    with its failure knowledge finally paid for.
    """
    domain = domain_max if domain_max is not None else 1 << 16
    traces: dict[str, FaultTrace] = {}
    for strategy in ("incremental", "rebuild"):
        graph = build_topology(topology, num_nodes, seed=seed)
        network = SensorNetwork.from_items(
            [0] * graph.number_of_nodes(),
            topology=graph,
            seed=seed,
            degree_bound=degree_bound,
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=epsilon)
        engine.register("count", CountQuery())
        engine.register(
            "below_mid",
            PredicateCountQuery(
                lambda item, mid=domain // 2: item < mid,
                description=f"x < {domain // 2}",
            ),
        )
        script = _fault_scenario_script(
            scenario,
            network.graph,
            network.node_ids(),
            epochs,
            storm_epoch,
            crash_fraction,
            rejoin_epoch,
            outage_radius,
            seed,
        )
        faults = FaultEngine(
            network,
            script=script,
            repair=TreeRepair(strategy=strategy),
            seed=seed,
            detector=detector_from_config(detector_period),
        )
        stream = DriftStream(
            graph.number_of_nodes(),
            max_value=domain,
            seed=seed,
            drift_fraction=drift_fraction,
        )
        traces[strategy] = run_faulty_stream(
            engine,
            stream,
            faults,
            epochs=epochs,
            compute_truth=compute_truth,
            # The incremental arm is the subject of the study; the rebuild
            # arm is its baseline and stays uninstrumented.
            telemetry=telemetry if strategy == "incremental" else None,
        )
    incremental = traces["incremental"]
    rebuild = traces["rebuild"]
    return FaultToleranceComparison(
        scenario=scenario,
        num_nodes=num_nodes,
        epochs=epochs,
        epsilon=epsilon,
        incremental_fault_bits=incremental.fault_epoch_bits,
        rebuild_fault_bits=rebuild.fault_epoch_bits,
        savings_factor=rebuild.fault_epoch_bits
        / max(1, incremental.fault_epoch_bits),
        incremental_total_bits=incremental.total_bits,
        rebuild_total_bits=rebuild.total_bits,
        incremental_repair_bits=incremental.total_repair_bits,
        rebuild_repair_bits=rebuild.total_repair_bits,
        incremental_max_count_error=incremental.max_answer_error("count"),
        rebuild_max_count_error=rebuild.max_answer_error("count"),
        count_error_budget=epsilon * num_nodes,
        incremental_rebuilds=incremental.rebuild_count,
        rebuild_rebuilds=rebuild.rebuild_count,
        incremental_trace=incremental,
        rebuild_trace=rebuild,
        incremental_detection_bits=incremental.total_detection_bits,
        rebuild_detection_bits=rebuild.total_detection_bits,
        detection_latency=incremental.mean_detection_latency,
        detector_period=(
            detector_period.period
            if isinstance(detector_period, HeartbeatDetector)
            else detector_period
        ),
    )


# --------------------------------------------------------------------------- #
# E12c — the cost of knowing about failures: heartbeat period sweep
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeartbeatTradeoffRecord:
    """One point of the heartbeat-period vs detection-latency trade-off."""

    period: int | None
    detection_bits: int
    detection_bits_per_epoch: float
    mean_latency: float
    worst_case_latency: int
    max_count_error: float
    fault_epoch_bits: int
    savings_factor: float


def run_heartbeat_study(
    periods: Sequence[int] = (1, 2, 4, 8),
    num_nodes: int = 400,
    epochs: int = 12,
    crash_fraction: float = 0.1,
    storm_epoch: int = 3,
    rejoin_epoch: int | None = 9,
    epsilon: float = 0.1,
    topology: str = "random_geometric",
    seed: int = 0,
    include_oracle: bool = True,
    telemetry=None,
) -> list[HeartbeatTradeoffRecord]:
    """E12c: charge failure detection and sweep its period.

    Each period runs the full E12 crash-storm comparison with a
    :class:`~repro.faults.HeartbeatDetector` of that sweep interval (plus an
    uncharged oracle row for reference).  Longer periods pay fewer heartbeat
    bits but detect crashes later, which shows up twice: the answer error
    spikes while stale zombie summaries linger at the root, and the repair
    that heals the storm is deferred.  Both repair policies pay the same
    bill, so the incremental-vs-rebuild savings factor survives the charge —
    the claim the fault benchmarks assert.
    """
    configs: list[int | None] = ([None] if include_oracle else [])
    configs.extend(periods)
    records: list[HeartbeatTradeoffRecord] = []
    for period in configs:
        comparison = run_fault_tolerance_study(
            num_nodes=num_nodes,
            epochs=epochs,
            scenario="crash_storm",
            crash_fraction=crash_fraction,
            storm_epoch=storm_epoch,
            rejoin_epoch=rejoin_epoch,
            epsilon=epsilon,
            topology=topology,
            seed=seed,
            detector_period=period,
            telemetry=telemetry,
        )
        detector = detector_from_config(period)
        records.append(
            HeartbeatTradeoffRecord(
                period=period,
                detection_bits=comparison.incremental_detection_bits,
                detection_bits_per_epoch=(
                    comparison.incremental_detection_bits / epochs
                ),
                mean_latency=comparison.detection_latency,
                worst_case_latency=(
                    0 if detector is None else detector.worst_case_latency()
                ),
                max_count_error=comparison.incremental_max_count_error,
                fault_epoch_bits=comparison.incremental_fault_bits,
                savings_factor=comparison.savings_factor,
            )
        )
    return records


# --------------------------------------------------------------------------- #
# E13 — root fail-over: charged election + re-rooting vs rebuild-and-recompute
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RootFailoverComparison:
    """Outcome of killing the query root under both repair policies.

    Both arms pay the same charged :class:`~repro.faults.RootElection`
    (``election_bits`` — candidate convergecast, winner flood, re-rooting
    flips); they differ in what happens next.  The *failover* arm re-roots
    the winner's fragment along the reversed root path, re-attaches the
    other fragments as units and migrates the summary caches, so only
    repaired paths retransmit.  The *rebuild* arm floods a fresh BFS tree
    over every alive edge and recomputes every summary from scratch — the
    charged naive baseline the fail-over must not exceed.
    ``decomposition_holds`` certifies ``total_bits == repair_bits +
    query_bits + detection_bits + election_bits`` on every epoch of both
    arms.
    """

    num_nodes: int
    epochs: int
    crash_epoch: int
    epsilon: float
    new_root: int
    #: Tree-attached population at the end of the crash epoch (the winner's
    #: fragment plus every re-adopted unit) — the answerable survivors.
    #: The election's own electorate size lives on ``ElectionResult``.
    attached_at_crash: int
    failover_fault_bits: int
    rebuild_fault_bits: int
    savings_factor: float
    failover_election_bits: int
    rebuild_election_bits: int
    failover_total_bits: int
    rebuild_total_bits: int
    failover_max_count_error: float
    rebuild_max_count_error: float
    count_error_budget: float
    decomposition_holds: bool
    failover_trace: FaultTrace
    rebuild_trace: FaultTrace


def _decomposition_holds(trace: FaultTrace) -> bool:
    return all(
        record.total_bits
        == record.repair_bits
        + record.query_bits
        + record.detection_bits
        + record.election_bits
        for record in trace
    )


def run_root_failover_study(
    num_nodes: int = 400,
    epochs: int = 8,
    crash_epoch: int = 2,
    epsilon: float = 0.1,
    topology: str = "random_geometric",
    degree_bound: int | None = None,
    drift_fraction: float = 0.02,
    churn_rate: float = 0.0,
    domain_max: int | None = None,
    compute_truth: bool = True,
    seed: int = 0,
    detector_period: "int | HeartbeatDetector | None" = None,
    telemetry=None,
) -> RootFailoverComparison:
    """E13: what losing the query node costs, survived two ways.

    Two identical networks run the same drifting stream with the same
    standing queries (COUNT and a COUNTP, as in E12); at ``crash_epoch`` a
    scripted :class:`~repro.faults.RootCrash` kills the query node on both.
    Each arm pays the identical charged election (highest surviving id over
    the alive component); the incremental arm then re-roots and re-attaches
    fragments as units while the ``strategy="rebuild"`` arm floods a fresh
    BFS tree and recomputes every summary — so the comparison isolates what
    the fail-over machinery itself saves over the naive charged response.
    ``churn_rate`` layers background membership churn underneath, and
    ``detector_period`` charges a heartbeat detector in both arms exactly as
    in E12.
    """
    domain = domain_max if domain_max is not None else 1 << 16
    traces: dict[str, FaultTrace] = {}
    roots: dict[str, int] = {}
    attached: dict[str, int] = {}
    for strategy in ("incremental", "rebuild"):
        graph = build_topology(topology, num_nodes, seed=seed)
        network = SensorNetwork.from_items(
            [0] * graph.number_of_nodes(),
            topology=graph,
            seed=seed,
            degree_bound=degree_bound,
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=epsilon)
        engine.register("count", CountQuery())
        engine.register(
            "below_mid",
            PredicateCountQuery(
                lambda item, mid=domain // 2: item < mid,
                description=f"x < {domain // 2}",
            ),
        )
        script = root_failover_script(
            network.node_ids(),
            crash_epoch=crash_epoch,
            epochs=epochs,
            churn_rate=churn_rate,
            seed=seed,
        )
        faults = FaultEngine(
            network,
            script=script,
            repair=TreeRepair(strategy=strategy),
            seed=seed,
            detector=detector_from_config(detector_period),
        )
        stream = DriftStream(
            graph.number_of_nodes(),
            max_value=domain,
            seed=seed,
            drift_fraction=drift_fraction,
        )
        traces[strategy] = run_faulty_stream(
            engine,
            stream,
            faults,
            epochs=epochs,
            compute_truth=compute_truth,
            telemetry=telemetry if strategy == "incremental" else None,
        )
        roots[strategy] = network.root_id
        crash_record = traces[strategy][crash_epoch]
        attached[strategy] = crash_record.attached
    if roots["incremental"] != roots["rebuild"]:
        raise ConfigurationError(
            f"the two arms elected different roots: {roots}"
        )
    failover = traces["incremental"]
    rebuild = traces["rebuild"]
    return RootFailoverComparison(
        num_nodes=num_nodes,
        epochs=epochs,
        crash_epoch=crash_epoch,
        epsilon=epsilon,
        new_root=roots["incremental"],
        attached_at_crash=attached["incremental"],
        failover_fault_bits=failover.fault_epoch_bits,
        rebuild_fault_bits=rebuild.fault_epoch_bits,
        savings_factor=rebuild.fault_epoch_bits
        / max(1, failover.fault_epoch_bits),
        failover_election_bits=failover.total_election_bits,
        rebuild_election_bits=rebuild.total_election_bits,
        failover_total_bits=failover.total_bits,
        rebuild_total_bits=rebuild.total_bits,
        failover_max_count_error=failover.max_answer_error("count"),
        rebuild_max_count_error=rebuild.max_answer_error("count"),
        count_error_budget=epsilon * num_nodes,
        decomposition_holds=(
            _decomposition_holds(failover) and _decomposition_holds(rebuild)
        ),
        failover_trace=failover,
        rebuild_trace=rebuild,
    )


# --------------------------------------------------------------------------- #
# E14 — multi-tenant standing queries: shared plan vs independent engines
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MultiTenantComparison:
    """Outcome of serving Q overlapping tenant queries two ways."""

    num_nodes: int
    epochs: int
    epsilon: float
    workload: str
    #: Tenants registered (one standing query each).
    tenants: int
    #: Distinct legs the planner actually runs (the dedup denominator).
    legs: int
    admitted: int
    shared: int
    degraded: int
    rejected: int
    #: Total charged bits of the shared plan (one MultiTenantEngine).
    shared_bits: int
    #: Total charged bits of Q dedicated single-tenant engines.
    independent_bits: int
    #: ``independent_bits / shared_bits`` — the one-for-all win.
    savings_factor: float
    #: Every admitted tenant's per-epoch answer was number-identical to
    #: its dedicated single-tenant engine's.
    answers_match: bool
    #: The tenant ledger columns summed exactly to the plan's charged bits
    #: after every epoch.
    decomposition_holds: bool
    shared_trace: StreamingTrace


def _tenant_query_mix(
    tenants: int, domain: int, compression: int, num_registers: int, seed: int
) -> list[tuple[str, str, "StandingQuery"]]:
    """A deterministic overlapping mix: Q tenants over four signatures.

    Tenants cycle through the four standing-query families of
    :func:`_standing_queries`; q-digest tenants additionally cycle their
    queried fraction (0.5 / 0.25 / 0.75), which shares the same leg —
    the fraction is excluded from the plan signature and resolved at the
    root — while exercising the per-tenant answer derivation.
    """
    base = _standing_queries(domain, compression, num_registers, seed)
    kinds = list(base)
    fractions = (0.5, 0.25, 0.75)
    mix: list[tuple[str, str, StandingQuery]] = []
    for index in range(tenants):
        kind = kinds[index % len(kinds)]
        query = base[kind]
        if kind == "median":
            fraction = fractions[(index // len(kinds)) % len(fractions)]
            query = QuantileQuery(
                fraction, universe_size=domain + 1, compression=compression
            )
        mix.append((f"tenant{index:02d}", kind, query))
    return mix


def run_multitenant_study(
    num_nodes: int = 100,
    epochs: int = 20,
    tenants: int = 12,
    workload: str = "drift",
    epsilon: float = 0.1,
    topology: str = "grid",
    domain_max: int | None = None,
    compression: int = 256,
    num_registers: int = 64,
    seed: int = 0,
    bits_budget: int | None = None,
    telemetry=None,
    **stream_params,
) -> MultiTenantComparison:
    """E14: Q overlapping standing queries, shared plan vs Q engines.

    The shared arm registers every tenant query on one
    :class:`~repro.tenancy.MultiTenantEngine`; the baseline runs one
    dedicated :class:`~repro.streaming.ContinuousQueryEngine` per admitted
    tenant over its own identically-built network and an identically-seeded
    stream.  Per epoch the study checks that every tenant's derived answer
    equals its dedicated engine's (number-identical — the plan changes
    *who pays*, never *what is answered*) and that the tenant ledger
    columns keep summing exactly to the shared plan's charged bits.  The
    headline measure is ``independent_bits / shared_bits``, which grows
    like Q over the number of distinct signatures.

    ``telemetry`` installs a recorder on the *shared* network (the subject;
    the baseline engines stay uninstrumented).
    """
    if tenants <= 0:
        raise ConfigurationError(f"tenants must be positive, got {tenants}")
    domain = domain_max if domain_max is not None else 1 << 16
    mix = _tenant_query_mix(tenants, domain, compression, num_registers, seed)

    shared_net = SensorNetwork.from_items(
        [0] * num_nodes, topology=topology, seed=seed
    )
    shared_net.clear_items()
    if telemetry is not None:
        shared_net.telemetry = telemetry
    service = MultiTenantEngine(
        shared_net, epsilon=epsilon, bits_budget=bits_budget
    )
    decisions = {
        tenant: service.register(tenant, query_name, query)
        for tenant, query_name, query in mix
    }

    dedicated: dict[str, ContinuousQueryEngine] = {}
    dedicated_streams = {}
    for tenant, query_name, query in mix:
        if not decisions[tenant].admitted:
            continue
        network = SensorNetwork.from_items(
            [0] * num_nodes, topology=topology, seed=seed
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=epsilon)
        engine.register(query_name, query)
        dedicated[tenant] = engine
        dedicated_streams[tenant] = make_stream(
            workload, num_nodes, max_value=domain, seed=seed, **stream_params
        )

    shared_stream = make_stream(
        workload, num_nodes, max_value=domain, seed=seed, **stream_params
    )
    answers_match = True
    decomposition = True
    query_names = {tenant: query_name for tenant, query_name, _ in mix}
    for epoch in range(epochs):
        updates = (
            shared_stream.initial() if epoch == 0 else shared_stream.step(epoch)
        )
        service.advance_epoch(updates)
        decomposition = decomposition and service.decomposition_holds()
        for tenant, engine in dedicated.items():
            stream = dedicated_streams[tenant]
            own = stream.initial() if epoch == 0 else stream.step(epoch)
            engine.advance_epoch(own)
            name = query_names[tenant]
            if engine.answers().get(name) != service.tenant_answers(tenant).get(
                name
            ):
                answers_match = False

    shared_bits = shared_net.ledger.total_bits
    independent_bits = sum(
        engine.network.ledger.total_bits for engine in dedicated.values()
    )
    statuses = [decision.status for decision in decisions.values()]
    return MultiTenantComparison(
        num_nodes=num_nodes,
        epochs=epochs,
        epsilon=epsilon,
        workload=workload,
        tenants=tenants,
        legs=len(service.planner.legs()),
        admitted=statuses.count("admitted"),
        shared=statuses.count("shared"),
        degraded=statuses.count("degraded"),
        rejected=statuses.count("rejected"),
        shared_bits=shared_bits,
        independent_bits=independent_bits,
        savings_factor=independent_bits / max(1, shared_bits),
        answers_match=answers_match,
        decomposition_holds=decomposition,
        shared_trace=service.trace,
    )
