"""Telemetry layer: null recorder, metrics registry, span reconciliation.

The load-bearing assertions are the *reconciliation* tests: summing span
``bits`` over one epoch's spans equals the ledger delta the
:class:`~repro.faults.FaultTrace` charged that epoch — on both execution
paths — and the per-phase spans reproduce the trace's accounting columns
exactly.  The overhead guard then shows the instrumentation costs nothing
when disabled: zero extra ledger bits and near-zero wall-clock.
"""

import time

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultEngine,
    HeartbeatDetector,
    RootElection,
    run_faulty_stream,
)
from repro.network.accounting import CommunicationLedger
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery, MedianQuery
from repro.streaming.trace import EpochRecord
from repro.faults.trace import FaultEpochRecord
from repro.telemetry import (
    NULL_RECORDER,
    NULL_SPAN,
    MetricsRegistry,
    NullRecorder,
    SpanTracer,
    TelemetryRecorder,
    as_recorder,
    dumps_line,
    load_jsonl,
    read_jsonl,
    split_by_type,
    write_jsonl,
)
from repro.telemetry.recorder import flatten_labels
from repro.workloads.faults import crash_storm_script, root_failover_script
from repro.workloads.streams import DriftStream

DOMAIN = 1 << 12


def storm_setup(num_nodes=36, execution="batched", detector=True):
    """A small grid under a crash storm followed by a root crash."""
    network = SensorNetwork.from_items(
        [0] * num_nodes, topology="grid", execution=execution
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=0.1)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN, compression=64))
    script = crash_storm_script(
        network.node_ids(),
        epoch=1,
        fraction=0.2,
        seed=0,
        rejoin_epoch=4,
        rejoin_value_max=DOMAIN - 1,
    ).merge(root_failover_script(network.node_ids(), crash_epoch=6))
    faults = FaultEngine(
        network,
        script=script,
        detector=HeartbeatDetector(period=2) if detector else None,
        election=RootElection(),
    )
    stream = DriftStream(num_nodes, max_value=DOMAIN, seed=3)
    return network, engine, stream, faults


class TestNullRecorder:
    def test_null_recorder_is_disabled_and_inert(self):
        recorder = NullRecorder()
        assert recorder.enabled is False
        recorder.bind_ledger(object())
        recorder.count("net.bits", 5, protocol="x")
        recorder.gauge("population.alive", 3)
        recorder.observe("epoch.bits", 1.5)

    def test_null_span_is_a_reusable_noop_context(self):
        recorder = NullRecorder()
        handle = recorder.span("epoch", epoch=3)
        assert handle is NULL_SPAN
        with handle as span:
            span.annotate(crashes=1)
        # Re-entrant: the shared singleton survives arbitrary reuse.
        with NULL_SPAN, NULL_SPAN:
            pass

    def test_as_recorder_mapping(self):
        assert as_recorder(None) is NULL_RECORDER
        tracer = SpanTracer()
        assert as_recorder(tracer) is tracer
        assert isinstance(NULL_RECORDER, TelemetryRecorder)

    def test_flatten_labels_sorts_and_stringifies(self):
        assert flatten_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert flatten_labels({}) == ()


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.count("net.bits", 10, protocol="stream:count")
        registry.count("net.bits", 5, protocol="stream:count")
        registry.count("net.bits", 7, protocol="faults:repair")
        registry.count("sweeps")
        assert registry.counter_value("net.bits", protocol="stream:count") == 15
        assert registry.counter_value("net.bits", protocol="faults:repair") == 7
        assert registry.counter_value("sweeps") == 1
        assert registry.counter_value("never.touched") == 0
        series = registry.counter_series("net.bits")
        assert len(series) == 2

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.count("net.bits", -1)

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.count("no spaces allowed")

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("population.alive", 36)
        registry.gauge("population.alive", 29)
        assert registry.gauge_value("population.alive") == 29
        assert registry.gauge_value("population.attached") is None

    def test_histogram_statistics_and_buckets(self):
        registry = MetricsRegistry()
        registry.declare_histogram("phase.wall_s", [0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            registry.observe("phase.wall_s", value, phase="repair")
        state = registry.histogram("phase.wall_s", phase="repair")
        assert state.count == 4
        assert state.minimum == 0.05
        assert state.maximum == 50.0
        assert state.mean == pytest.approx(55.55 / 4)
        # Cumulative bucket counts: <=0.1 -> 1, <=1.0 -> 2, <=10.0 -> 3.
        assert state.counts == [1, 2, 3]

    def test_histogram_declared_after_observation_rejected(self):
        registry = MetricsRegistry()
        registry.observe("epoch.bits", 10)
        with pytest.raises(ConfigurationError):
            registry.declare_histogram("epoch.bits", [1.0])

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.count("net.bits", 12, protocol="stream:count")
        registry.gauge("population.alive", 29)
        registry.declare_histogram("phase.wall_s", [0.1, 1.0])
        registry.observe("phase.wall_s", 0.5, phase="detect")
        text = registry.render_prometheus()
        assert "# TYPE repro_net_bits counter" in text
        assert 'repro_net_bits{protocol="stream:count"} 12' in text
        assert "# TYPE repro_population_alive gauge" in text
        assert 'repro_phase_wall_s_bucket{phase="detect",le="1"} 1' in text
        assert 'repro_phase_wall_s_bucket{phase="detect",le="+Inf"} 1' in text
        assert 'repro_phase_wall_s_count{phase="detect"} 1' in text

    def test_markdown_rendering(self):
        registry = MetricsRegistry()
        registry.count("net.bits", 12, protocol="stream:count")
        registry.observe("answer.error", 2.0, query="count")
        text = registry.render_markdown()
        assert "| `net.bits` | protocol=stream:count | 12 |" in text
        assert "`answer.error`" in text
        assert MetricsRegistry().render_markdown() == "(no metrics recorded)\n"

    def test_to_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.count("net.bits", 12, protocol="x")
        registry.gauge("population.alive", 3)
        registry.observe("epoch.bits", 100)
        line = dumps_line(registry.to_dict())
        assert '"net.bits"' in line and '"population.alive"' in line


class TestSpanTracer:
    def test_spans_meter_ledger_deltas_inclusively(self):
        ledger = CommunicationLedger()
        tracer = SpanTracer(ledger=ledger)
        with tracer.span("epoch", epoch=0) as epoch:
            ledger.charge(1, 2, 100, protocol="stream:count")
            with tracer.span("repair") as repair:
                ledger.charge(2, 3, 40, protocol="faults:repair")
            ledger.charge(3, 4, 10, protocol="stream:count")
        assert repair.bits == 40
        assert epoch.bits == 150
        assert epoch.exclusive_bits == 110
        assert epoch.children == 1
        assert epoch.messages == 3 and repair.messages == 1
        assert tracer.open_spans == 0

    def test_out_of_order_close_rejected(self):
        tracer = SpanTracer()
        outer = tracer.span("epoch")
        inner = tracer.span("repair")
        with pytest.raises(ConfigurationError):
            outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)

    def test_rebind_with_open_spans_rejected(self):
        ledger = CommunicationLedger()
        tracer = SpanTracer(ledger=ledger)
        tracer.bind_ledger(ledger)  # same ledger: no-op
        with tracer.span("epoch"):
            with pytest.raises(ConfigurationError):
                tracer.bind_ledger(CommunicationLedger())

    def test_failed_spans_are_flagged(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("repair"):
                raise RuntimeError("boom")
        assert tracer.spans[-1].failed is True
        assert tracer.phase_summary()["repair"]["count"] == 1

    def test_span_queries_and_phase_summary(self):
        ledger = CommunicationLedger()
        tracer = SpanTracer(ledger=ledger)
        with tracer.span("epoch") as epoch:
            with tracer.span("stream"):
                with tracer.span("convergecast"):
                    ledger.charge(1, 2, 8)
        assert [s.name for s in tracer.spans] == ["convergecast", "stream", "epoch"]
        assert len(tracer.spans_named("epoch")) == 1
        children = tracer.children_of(epoch)
        assert [s.name for s in children] == ["stream"]
        subtree = tracer.subtree_of(epoch)
        assert {s.name for s in subtree} == {"epoch", "stream", "convergecast"}
        assert sum(s.exclusive_bits for s in subtree) == epoch.bits == 8
        summary = tracer.phase_summary()
        assert summary["convergecast"]["bits"] == 8
        assert summary["epoch"]["exclusive_bits"] == 0

    def test_tracer_without_ledger_still_times(self):
        tracer = SpanTracer()
        with tracer.span("epoch") as span:
            pass
        assert span.bits == 0
        assert span.wall_s >= 0.0


class TestJsonl:
    def test_write_and_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [{"type": "span", "name": "epoch"}, {"type": "metrics", "m": 1}]
        assert write_jsonl(path, records) == 2
        assert load_jsonl(path) == records
        buckets = split_by_type(read_jsonl(path))
        assert [r["name"] for r in buckets["span"]] == ["epoch"]
        assert len(buckets["metrics"]) == 1
        assert split_by_type([{"no": "type"}])["unknown"] == [{"no": "type"}]

    def test_tracer_jsonl_is_self_describing(self, tmp_path):
        ledger = CommunicationLedger()
        tracer = SpanTracer(ledger=ledger)
        with tracer.span("epoch", epoch=0):
            ledger.charge(1, 2, 16, protocol="stream:count")
        path = tmp_path / "trace.jsonl"
        lines = tracer.write_jsonl(path)
        assert lines == len(tracer.spans) + 1  # spans + one metrics line
        buckets = split_by_type(read_jsonl(path))
        span = buckets["span"][0]
        assert span["name"] == "epoch" and span["bits"] == 16
        assert "exclusive_bits" in span
        assert buckets["metrics"][0]["metrics"]["counters"]

    def test_epoch_records_serialize_with_type_tags(self):
        streaming = EpochRecord(
            epoch=0, messages=1, rounds=2, energy_nj=0.5,
            dirty_nodes=3, transmissions=4, suppressions=5, bits=60,
        )
        faulty = FaultEpochRecord(
            epoch=1, messages=0, rounds=0, energy_nj=0.0,
            dirty_nodes=0, transmissions=0, suppressions=0,
        )
        assert streaming.to_dict()["type"] == "epoch"
        assert streaming.to_dict()["bits"] == 60
        assert faulty.to_dict()["type"] == "fault_epoch"
        assert '"type": "epoch"' not in streaming.to_jsonl()  # compact separators
        assert '"epoch":0' in streaming.to_jsonl().replace(" ", "")


@pytest.mark.parametrize("execution", ["batched", "per-edge"])
class TestReconciliation:
    """Span bits == ledger epoch deltas, on both execution paths."""

    def test_epoch_spans_reconcile_with_the_fault_trace(self, execution):
        network, engine, stream, faults = storm_setup(execution=execution)
        tracer = SpanTracer()
        trace = run_faulty_stream(
            engine, stream, faults, epochs=8, telemetry=tracer
        )
        epochs = tracer.spans_named("epoch")
        assert len(epochs) == len(trace) == 8
        for span, record in zip(epochs, trace):
            assert span.attributes["epoch"] == record.epoch
            # The acceptance criterion: span bits over one epoch equal the
            # ledger delta the trace charged for that epoch.
            assert span.bits == record.total_bits
            assert span.messages == record.messages
            # The epoch span does nothing outside its phase children.
            assert span.exclusive_bits == 0
            subtree = tracer.subtree_of(span)
            assert sum(s.exclusive_bits for s in subtree) == span.bits

    def test_phase_spans_reproduce_the_accounting_columns(self, execution):
        network, engine, stream, faults = storm_setup(execution=execution)
        tracer = SpanTracer()
        trace = run_faulty_stream(
            engine, stream, faults, epochs=8, telemetry=tracer
        )
        assert sum(
            s.bits for s in tracer.spans_named("detect")
        ) == trace.total_detection_bits
        assert sum(
            s.bits for s in tracer.spans_named("election")
        ) == trace.total_election_bits > 0  # the root crash forced one
        # The election runs nested inside the repair pass, so repair's
        # *exclusive* bits are the trace's repair column.
        assert sum(
            s.exclusive_bits for s in tracer.spans_named("repair")
        ) == trace.total_repair_bits
        assert sum(
            s.bits for s in tracer.spans_named("stream")
        ) == trace.total_query_bits
        # ledger.bits counters carry the same split by protocol key.
        assert tracer.metrics.counter_value(
            "ledger.bits", protocol="faults:heartbeat"
        ) == trace.total_detection_bits
        assert tracer.metrics.counter_value(
            "ledger.bits", protocol="faults:election"
        ) == trace.total_election_bits

    def test_instrumented_run_charges_identical_bits(self, execution):
        _, engine, stream, faults = storm_setup(execution=execution)
        baseline = run_faulty_stream(engine, stream, faults, epochs=8)
        _, engine2, stream2, faults2 = storm_setup(execution=execution)
        traced = run_faulty_stream(
            engine2, stream2, faults2, epochs=8, telemetry=SpanTracer()
        )
        assert [r.total_bits for r in traced] == [r.total_bits for r in baseline]
        assert [r.answers for r in traced] == [r.answers for r in baseline]


class TestOverheadGuard:
    """With the null recorder, instrumentation must be free."""

    NUM_NODES = 10_000
    EPOCHS = 2

    def big_setup(self):
        network = SensorNetwork.from_items([0] * self.NUM_NODES, topology="grid")
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.1)
        engine.register("count", CountQuery())
        script = crash_storm_script(
            network.node_ids(), epoch=1, fraction=0.05, seed=0
        )
        faults = FaultEngine(network, script=script)
        stream = DriftStream(self.NUM_NODES, seed=0)
        return engine, stream, faults

    def run_once(self, telemetry):
        engine, stream, faults = self.big_setup()
        started = time.perf_counter()
        trace = run_faulty_stream(
            engine,
            stream,
            faults,
            epochs=self.EPOCHS,
            compute_truth=False,
            telemetry=telemetry,
        )
        elapsed = time.perf_counter() - started
        return trace.total_bits, engine.network.ledger.total_bits, elapsed

    @pytest.mark.slow
    def test_null_recorder_charges_zero_extra_bits(self):
        default_bits, default_ledger, _ = self.run_once(None)
        null_bits, null_ledger, _ = self.run_once(NullRecorder())
        traced_bits, traced_ledger, _ = self.run_once(SpanTracer())
        assert default_bits == null_bits == traced_bits
        assert default_ledger == null_ledger == traced_ledger

    @pytest.mark.slow
    def test_null_recorder_wall_clock_within_tolerance(self):
        # Interleaved best-of-3; re-measure up to 3 times before failing so
        # a single scheduler hiccup cannot flake the guard.
        for attempt in range(3):
            base_times, null_times = [], []
            for _ in range(3):
                base_times.append(self.run_once(None)[2])
                null_times.append(self.run_once(NullRecorder())[2])
            base, null = min(base_times), min(null_times)
            if null <= base * 1.05:
                return
        pytest.fail(
            f"NullRecorder run took {null:.4f}s vs {base:.4f}s baseline "
            f"(> 5% overhead)"
        )
