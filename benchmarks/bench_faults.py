"""E12 — fault tolerance: incremental repair + delta re-sync vs rebuild.

The fault engine's claim is that surviving failures should cost bits
proportional to the *damage*, not the network: when 10% of a 10,000-node
field crashes at once, re-attaching the orphaned subtrees through local
adoption handshakes and re-synchronising only the summaries along repaired
paths must beat tearing the BFS tree down, flooding a rebuild over every
alive edge and recomputing every summary from scratch.  This benchmark
drives both repair policies through the same scripted crash storm (10% of
the field at epoch 2, recovering at epoch 5) over the same drifting stream
and checks:

* **savings** — the incremental policy spends ≥ 5× fewer bits across the
  fault epochs than rebuild-and-recompute (the acceptance criterion;
  measured well above that);
* **discipline** — the incremental arm never trips its rebuild fallback on
  this storm, while the naive arm rebuilds at both the storm and the
  recovery;
* **accuracy** — both arms keep the COUNT answer within the ε budget against
  the attached-population ground truth on every epoch, i.e. resilience is
  not bought with wrong answers.

Set ``REPRO_FAULT_SIZES`` (comma-separated node counts) to shrink the sweep
— the CI smoke job runs ``REPRO_FAULT_SIZES=256``, which still asserts all
three properties at a size where the run takes a fraction of a second.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

from benchmarks.conftest import (
    emit_bench_json,
    emit_telemetry_jsonl,
    phases_from_tracer,
    run_once,
)
from repro.analysis.experiments import (
    run_fault_tolerance_study,
    run_heartbeat_study,
    run_root_failover_study,
)
from repro.analysis.report import format_table
from repro.faults import FaultEngine, FaultScript, RootCrash, TreeRepair
from repro.network.simulator import SensorNetwork
from repro.network.topology import build_topology
from repro.telemetry import (
    CostAttribution,
    FlightRecorder,
    SpanTracer,
    diagnose,
    verdict,
)
from repro.workloads.faults import storm_under_churn_script

_ENV_SIZES = os.environ.get("REPRO_FAULT_SIZES")
FULL_SIZES = (10_000,)
SIZES = (
    tuple(int(size) for size in _ENV_SIZES.split(",")) if _ENV_SIZES else FULL_SIZES
)
SMOKE = _ENV_SIZES is not None
EPOCHS = 8
STORM_EPOCH = 2
REJOIN_EPOCH = 5
CRASH_FRACTION = 0.10
SAVINGS_TARGET = 5.0
SPEEDUP_TARGET = 5.0


def test_incremental_repair_beats_rebuild(benchmark):
    started = time.perf_counter()
    # One tracer across the sweep: the incremental arm of every size runs
    # instrumented, so the bench JSON gains the per-phase wall-clock and
    # bit breakdown and CI archives the full span trace — now with the
    # flight recorder's causal events and the per-node attribution lines,
    # so the CI diagnosis gate can explain any flagged epoch.
    tracer = SpanTracer(flight=FlightRecorder(), attribution=CostAttribution())

    def sweep():
        return [
            run_fault_tolerance_study(
                num_nodes=num_nodes,
                epochs=EPOCHS,
                scenario="crash_storm",
                crash_fraction=CRASH_FRACTION,
                storm_epoch=STORM_EPOCH,
                rejoin_epoch=REJOIN_EPOCH,
                topology="random_geometric",
                seed=0,
                telemetry=tracer,
            )
            for num_nodes in SIZES
        ]

    comparisons = run_once(benchmark, sweep)

    rows = [
        [
            comparison.num_nodes,
            comparison.incremental_fault_bits,
            comparison.rebuild_fault_bits,
            round(comparison.savings_factor, 1),
            comparison.incremental_repair_bits,
            comparison.rebuild_repair_bits,
            comparison.incremental_max_count_error,
            comparison.rebuild_rebuilds,
        ]
        for comparison in comparisons
    ]
    print()
    print(format_table(
        [
            "N",
            "incr. bits",
            "rebuild bits",
            "savings",
            "incr. repair",
            "rebuild repair",
            "count err",
            "rebuilds",
        ],
        rows,
        title=(
            f"E12  10% crash storm + recovery: incremental repair vs "
            f"rebuild-and-recompute ({EPOCHS} epochs)"
        ),
    ))

    for comparison in comparisons:
        benchmark.extra_info[f"savings_{comparison.num_nodes}"] = round(
            comparison.savings_factor, 2
        )
        benchmark.extra_info[f"incremental_bits_{comparison.num_nodes}"] = (
            comparison.incremental_fault_bits
        )
        benchmark.extra_info[f"rebuild_bits_{comparison.num_nodes}"] = (
            comparison.rebuild_fault_bits
        )
        # Acceptance: ≥ 5× fewer bits across the fault epochs.
        assert comparison.savings_factor >= SAVINGS_TARGET
        # The incremental arm stayed incremental (its fallback threshold was
        # never tripped); the naive arm rebuilt at the storm and the rejoin.
        assert comparison.incremental_rebuilds == 0
        assert comparison.rebuild_rebuilds >= 2
        # Resilience does not cost accuracy: both arms stay within ε · n of
        # the attached ground truth on every epoch.
        assert comparison.incremental_max_count_error <= comparison.count_error_budget
        assert comparison.rebuild_max_count_error <= comparison.count_error_budget

    headline = comparisons[-1]
    diagnosis = diagnose(list(tracer.iter_dicts()))
    # The storm epochs must be explainable: every flagged epoch walks back
    # to a recorded cause (the strict CI gate re-checks this on the trace).
    assert not diagnosis.unattributed, [a.render() for a in diagnosis.unattributed]
    emit_bench_json(
        "faults",
        n=headline.num_nodes,
        wall_clock_s=time.perf_counter() - started,
        bits=headline.incremental_fault_bits,
        metrics={
            "repair_savings": {
                "value": round(headline.savings_factor, 2),
                "floor": SAVINGS_TARGET,
            },
        },
        phases=phases_from_tracer(tracer),
        anomaly=verdict(diagnosis),
    )
    emit_telemetry_jsonl("faults", tracer)


def test_savings_across_fault_scenarios(benchmark):
    """Regional outages, churn and link storms also favour incremental repair."""

    def sweep():
        return {
            scenario: run_fault_tolerance_study(
                num_nodes=256,
                epochs=EPOCHS,
                scenario=scenario,
                crash_fraction=CRASH_FRACTION,
                storm_epoch=STORM_EPOCH,
                rejoin_epoch=REJOIN_EPOCH,
                topology="random_geometric",
                seed=1,
            )
            for scenario in ("regional_outage", "churn", "link_storm")
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            scenario,
            comparison.incremental_fault_bits,
            comparison.rebuild_fault_bits,
            round(comparison.savings_factor, 1),
            comparison.incremental_max_count_error,
        ]
        for scenario, comparison in results.items()
    ]
    print()
    print(format_table(
        ["scenario", "incr. bits", "rebuild bits", "savings", "count err"],
        rows,
        title="E12b  savings factor by fault scenario (N = 256, 8 epochs)",
    ))
    for scenario, comparison in results.items():
        benchmark.extra_info[f"{scenario}_savings"] = round(
            comparison.savings_factor, 2
        )
        assert comparison.savings_factor >= SAVINGS_TARGET
        assert comparison.incremental_max_count_error <= comparison.count_error_budget


# --------------------------------------------------------------------------- #
# E13 — root fail-over: charged election + re-rooting vs rebuild-and-recompute
# --------------------------------------------------------------------------- #
def test_root_failover_beats_charged_rebuild(benchmark):
    """Losing the query node is survivable, measured, and cheaper than naive.

    A scripted :class:`~repro.faults.RootCrash` kills the root mid-stream.
    Both arms pay the identical charged election (candidate convergecast +
    winner flood + re-rooting flips under ``faults:election``); the
    fail-over arm then re-roots the winner's fragment along the reversed
    root path and re-attaches the other fragments as units, while the
    baseline arm floods a fresh BFS tree and recomputes every summary.
    Acceptance: the fail-over epoch bill never exceeds the charged
    rebuild-and-recompute baseline, the per-epoch decomposition
    ``total == repair + query + detection + election`` holds exactly, and
    the per-edge and batched election paths are bit-for-bit ledger twins.
    """
    started = time.perf_counter()

    def sweep():
        return [
            run_root_failover_study(
                num_nodes=num_nodes,
                epochs=EPOCHS,
                crash_epoch=STORM_EPOCH,
                topology="random_geometric",
                seed=0,
            )
            for num_nodes in SIZES
        ]

    comparisons = run_once(benchmark, sweep)
    rows = [
        [
            comparison.num_nodes,
            comparison.new_root,
            comparison.failover_fault_bits,
            comparison.rebuild_fault_bits,
            round(comparison.savings_factor, 2),
            comparison.failover_election_bits,
            comparison.failover_max_count_error,
        ]
        for comparison in comparisons
    ]
    print()
    print(format_table(
        [
            "N",
            "new root",
            "failover bits",
            "rebuild bits",
            "savings",
            "election bits",
            "count err",
        ],
        rows,
        title=(
            f"E13  root crash at epoch {STORM_EPOCH}: charged election + "
            f"re-root vs rebuild-and-recompute ({EPOCHS} epochs)"
        ),
    ))

    for comparison in comparisons:
        benchmark.extra_info[f"failover_savings_{comparison.num_nodes}"] = round(
            comparison.savings_factor, 2
        )
        # Election + re-root + stream recovery is one fully accounted epoch.
        assert comparison.decomposition_holds
        # Both arms paid the same (non-trivial) election bill.
        assert comparison.failover_election_bits > 0
        assert comparison.failover_election_bits == comparison.rebuild_election_bits
        # Acceptance: fail-over costs no more than the charged naive
        # response (in practice well below — the margin is the re-sync
        # traffic the cache migration avoids).
        assert comparison.failover_fault_bits <= comparison.rebuild_fault_bits
        # The handover does not cost accuracy in either arm.
        assert comparison.failover_max_count_error <= comparison.count_error_budget
        assert comparison.rebuild_max_count_error <= comparison.count_error_budget

    # Per-edge vs batched elections are interchangeable at the headline
    # size: same winner, same re-rooted tree, bit-for-bit identical ledgers.
    num_nodes = max(SIZES)
    graph = build_topology("random_geometric", num_nodes, seed=0)
    networks = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            [0] * num_nodes, topology=graph, seed=0, degree_bound=None,
            execution=mode,
        )
        faults = FaultEngine(network, script=FaultScript().add(0, RootCrash()))
        report = faults.step(0)
        assert report.election is not None
        networks.append(network)
    assert networks[0].root_id == networks[1].root_id
    assert networks[0].tree.parent == networks[1].tree.parent
    left = networks[0].ledger.snapshot()
    right = networks[1].ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.per_protocol_bits == right.per_protocol_bits
    assert left.rounds == right.rounds

    headline = comparisons[-1]
    emit_bench_json(
        "faults",
        n=headline.num_nodes,
        wall_clock_s=time.perf_counter() - started,
        bits=headline.failover_fault_bits,
        metrics={
            "root_failover_savings": {
                "value": round(headline.savings_factor, 2),
                "floor": 1.0,
            },
        },
    )


# --------------------------------------------------------------------------- #
# The cost of knowing: charged heartbeat detection
# --------------------------------------------------------------------------- #
def test_heartbeat_detection_pays_for_failure_knowledge(benchmark):
    """Charged detection keeps the repair gap while exposing its real price.

    Sweeping the heartbeat period shows the trade: shorter periods pay more
    standing bits for instant detection, longer periods pay less but answer
    with stale zombie summaries until the next sweep (visible as COUNT
    error during the detection window).  Both repair policies pay the same
    bill, so incremental repair still beats rebuild-and-recompute by ≥5x
    with detection charged.
    """
    records = run_once(
        benchmark,
        run_heartbeat_study,
        periods=(1, 2, 4, 8),
        num_nodes=256,
        epochs=12,
        seed=0,
    )
    rows = [
        [
            "oracle" if record.period is None else record.period,
            record.detection_bits,
            round(record.detection_bits_per_epoch, 1),
            round(record.mean_latency, 2),
            record.worst_case_latency,
            record.max_count_error,
            round(record.savings_factor, 1),
        ]
        for record in records
    ]
    print()
    print(format_table(
        [
            "period",
            "detect bits",
            "bits/epoch",
            "mean latency",
            "worst",
            "count err",
            "savings",
        ],
        rows,
        title="E12c  heartbeat period vs detection latency (N = 256, 12 epochs)",
    ))

    oracle = records[0]
    charged = records[1:]
    assert oracle.period is None and oracle.detection_bits == 0
    for record in charged:
        benchmark.extra_info[f"period_{record.period}_bits"] = record.detection_bits
        # Detection is charged, and the repair-vs-rebuild gap survives it.
        assert record.detection_bits > 0
        assert record.savings_factor >= SAVINGS_TARGET
    # Longer periods pay fewer heartbeat bits...
    bits = [record.detection_bits for record in charged]
    assert bits == sorted(bits, reverse=True)
    # ...at the price of real detection latency (and stale answers).
    instant, *delayed = charged
    assert instant.mean_latency == 0.0
    assert all(record.mean_latency > 0 for record in delayed)
    assert max(record.max_count_error for record in delayed) > 0

    emit_bench_json(
        "faults",
        n=256,
        wall_clock_s=0.0,
        bits=charged[0].detection_bits,
        metrics={
            "heartbeat_savings": {
                "value": round(min(r.savings_factor for r in charged), 2),
                "floor": SAVINGS_TARGET,
            },
        },
    )


# --------------------------------------------------------------------------- #
# Wall-clock: the batched repair core vs the per-edge reference
# --------------------------------------------------------------------------- #
WALL_CLOCK_EPOCHS = 16
WALL_CLOCK_STORM_EPOCH = 4
WALL_CLOCK_REJOIN_EPOCH = 8
WALL_CLOCK_CHURN_RATE = 0.002
WALL_CLOCK_REPEATS = 3


class _TimedRepair:
    """Wrap a repair policy; accumulate the wall-clock of every repair pass.

    The measured unit is the *repair pass as the batched execution core
    consumes it*: patching the spanning tree plus delivering a current
    :class:`~repro.network.FlatTree` view for the next batched traversal.
    The per-edge reference rebuilds that view from scratch; the batched
    path rewires it in place — exactly the difference the flat-array port
    exists to exploit.
    """

    def __init__(self, inner, network):
        self.inner = inner
        self.network = network
        self.seconds = 0.0

    def repair(self, network):
        start = time.perf_counter()
        result = self.inner.repair(network)
        self.network.flat_tree
        self.seconds += time.perf_counter() - start
        return result


def _run_crash_storm(graph, execution: str):
    network = SensorNetwork.from_items(
        [0] * graph.number_of_nodes(), topology=graph, seed=0, degree_bound=None
    )
    script = storm_under_churn_script(
        network.node_ids(),
        epochs=WALL_CLOCK_EPOCHS,
        storm_epoch=WALL_CLOCK_STORM_EPOCH,
        storm_fraction=CRASH_FRACTION,
        rejoin_epoch=WALL_CLOCK_REJOIN_EPOCH,
        churn_rate=WALL_CLOCK_CHURN_RATE,
        seed=0,
    )
    timed = _TimedRepair(TreeRepair(execution=execution), network)
    faults = FaultEngine(network, script=script, repair=timed)
    network.flat_tree  # a running deployment starts with a current view
    gc.collect()
    gc.disable()
    try:
        for epoch in range(WALL_CLOCK_EPOCHS):
            faults.step(epoch)
    finally:
        gc.enable()
    return timed.seconds, network


def test_batched_repair_outpaces_per_edge(benchmark):
    """The flat-array repair pass is ≥5x faster at n = 10,000 (target ≥10x).

    A 10% crash storm (recovering four epochs later) rides on sustained
    background churn — the regime ROADMAP's "Scale ceiling" item calls out,
    where the per-edge pass pays O(alive edges) every fault epoch no matter
    how small the damage.  Repair wall-clock (tree patch + flat-view
    delivery) is accumulated per pass over interleaved repeats; the two
    paths must also agree exactly on the repaired tree and the ledger.
    """
    num_nodes = max(SIZES)
    graph = build_topology("random_geometric", num_nodes, seed=0)

    def race():
        per_edge, batched = [], []
        for _ in range(WALL_CLOCK_REPEATS):
            seconds, reference_network = _run_crash_storm(graph, "per-edge")
            per_edge.append(seconds)
            seconds, batched_network = _run_crash_storm(graph, "batched")
            batched.append(seconds)
        return per_edge, batched, reference_network, batched_network

    per_edge, batched, reference_network, batched_network = run_once(
        benchmark, race
    )
    speedup = statistics.median(per_edge) / statistics.median(batched)

    print()
    print(format_table(
        ["path", "repair wall-clock (ms, per repeat)", "median (ms)"],
        [
            [
                "per-edge",
                " ".join(f"{seconds * 1000:.0f}" for seconds in per_edge),
                round(statistics.median(per_edge) * 1000, 1),
            ],
            [
                "batched",
                " ".join(f"{seconds * 1000:.0f}" for seconds in batched),
                round(statistics.median(batched) * 1000, 1),
            ],
        ],
        title=(
            f"E12d  repair pass wall-clock, 10% storm + churn "
            f"(N = {num_nodes}, {WALL_CLOCK_EPOCHS} epochs): "
            f"{speedup:.1f}x"
        ),
    ))
    benchmark.extra_info["repair_speedup"] = round(speedup, 2)

    # The two paths are interchangeable, not merely comparable: identical
    # repaired trees and bit-for-bit identical ledgers.
    assert reference_network.tree.parent == batched_network.tree.parent
    left = reference_network.ledger.snapshot()
    right = batched_network.ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.per_protocol_bits == right.per_protocol_bits
    assert left.rounds == right.rounds

    metrics = {}
    if not SMOKE:
        # Acceptance: ≥5x wall-clock on the 10k-node repair pass.  Timing on
        # shared smoke runners is noise, so the smoke job checks only the
        # equivalence half above.
        assert speedup >= SPEEDUP_TARGET
        metrics["repair_speedup"] = {
            "value": round(speedup, 2),
            "floor": SPEEDUP_TARGET,
        }
    emit_bench_json(
        "faults",
        n=num_nodes,
        wall_clock_s=statistics.median(batched),
        bits=batched_network.ledger.total_bits,
        metrics=metrics,
    )
