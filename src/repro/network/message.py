"""Message objects exchanged between sensor nodes.

A :class:`Message` carries an opaque payload plus an explicit size in bits.
The size is declared by the sending protocol (using the helpers in
``repro._util.bits``) rather than derived from the Python object, because the
communication-complexity accounting must reflect the encoding a real
implementation would use, not Python's in-memory representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro._util.validation import require_non_negative
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Message:
    """A single transmission from ``sender`` to ``receiver``.

    Attributes:
        sender: node id of the transmitting node.
        receiver: node id of the receiving node.
        payload: protocol-defined content (kept opaque by the network layer).
        size_bits: number of bits charged for this transmission.
        protocol: label of the protocol that produced the message; used only
            for per-protocol breakdowns in the accounting layer.
        round_index: synchronous round in which the message was sent, when the
            sending protocol is round-based (otherwise ``None``).
    """

    sender: int
    receiver: int
    payload: Any
    size_bits: int
    protocol: str = "unknown"
    round_index: int | None = None
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        require_non_negative(self.size_bits, "size_bits")
        if self.sender == self.receiver:
            raise ConfigurationError(
                f"a node cannot send a message to itself (node {self.sender})"
            )

    def with_receiver(self, receiver: int) -> "Message":
        """Return a copy of this message addressed to a different node."""
        return Message(
            sender=self.sender,
            receiver=receiver,
            payload=self.payload,
            size_bits=self.size_bits,
            protocol=self.protocol,
            round_index=self.round_index,
            metadata=dict(self.metadata),
        )
