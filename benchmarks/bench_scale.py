"""E11 — execution-path scaling: the batched core vs the per-edge reference.

The batched execution core exists so the simulator can run production-scale
fields: the per-edge path allocates a ``Message``, consults the graph, walks
the radio model and mutates the ledger once per edge, which caps experiments
at a few thousand nodes.  This benchmark drives the same broadcast + SUM
convergecast round trip through both paths and checks the two claims of the
refactor:

* **equivalence** — wherever both paths run, their ledgers are bit-for-bit
  identical (``ScalingRecord.ledgers_identical``);
* **speed** — the batched path is ≥ 5× faster in wall-clock at n = 10,000,
  and completes a 100k-node field (where the per-edge path is not even
  attempted).

Set ``REPRO_SCALE_SIZES`` (comma-separated node counts) to shrink the sweep —
the CI smoke job runs ``REPRO_SCALE_SIZES=256,1024``, which still asserts
ledger equivalence but skips the wall-clock assertions (timing on shared
runners is noise).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import (
    emit_bench_json,
    emit_telemetry_jsonl,
    phases_from_tracer,
    run_once,
)
from repro.analysis.experiments import run_scaling_study
from repro.analysis.report import format_table
from repro.network.simulator import SensorNetwork
from repro.telemetry import SpanTracer

_ENV_SIZES = os.environ.get("REPRO_SCALE_SIZES")
FULL_SIZES = (1_000, 10_000, 100_000)
SIZES = (
    tuple(int(size) for size in _ENV_SIZES.split(",")) if _ENV_SIZES else FULL_SIZES
)
SMOKE = _ENV_SIZES is not None
PER_EDGE_LIMIT = 20_000
SPEEDUP_TARGET = 5.0
SPEEDUP_AT = 10_000


def test_batched_backend_scales(benchmark):
    # The one-shot protocols emit no phase spans, but the tracer still
    # collects the per-size timing histograms and net.* counters.
    tracer = SpanTracer()
    records = run_once(
        benchmark,
        run_scaling_study,
        SIZES,
        per_edge_limit=PER_EDGE_LIMIT,
        repeats=3,
        seed=0,
        telemetry=tracer,
    )

    rows = [
        [
            record.num_nodes,
            record.tree_height,
            round(record.batched_seconds * 1000, 1),
            "-" if record.per_edge_seconds is None
            else round(record.per_edge_seconds * 1000, 1),
            "-" if record.speedup is None else round(record.speedup, 1),
            "-" if record.ledgers_identical is None else record.ledgers_identical,
            record.messages,
        ]
        for record in records
    ]
    print()
    print(format_table(
        [
            "N",
            "tree height",
            "batched (ms)",
            "per-edge (ms)",
            "speedup",
            "ledgers equal",
            "messages",
        ],
        rows,
        title="E11  broadcast + SUM convergecast: batched vs per-edge execution",
    ))

    for record in records:
        benchmark.extra_info[f"batched_ms_{record.num_nodes}"] = round(
            record.batched_seconds * 1000, 2
        )
        if record.speedup is not None:
            benchmark.extra_info[f"speedup_{record.num_nodes}"] = round(
                record.speedup, 2
            )

    # Equivalence: wherever both paths ran, the ledgers must be identical.
    compared = [record for record in records if record.ledgers_identical is not None]
    assert compared, "no size was small enough to run the per-edge reference"
    assert all(record.ledgers_identical for record in compared)
    # Every requested size completed under the batched backend.
    assert len(records) == len(SIZES)

    metrics = {}
    if not SMOKE:
        # Acceptance: ≥ 5× wall-clock speedup on the 10k-node convergecast...
        ten_k = [
            record
            for record in records
            if record.num_nodes >= SPEEDUP_AT and record.speedup is not None
        ]
        assert ten_k, f"sweep did not include a timed size ≥ {SPEEDUP_AT}"
        best_speedup = max(record.speedup for record in ten_k)
        assert best_speedup >= SPEEDUP_TARGET
        # ...and the 100k-node field completes on the batched path.
        assert max(record.num_nodes for record in records) >= 99_000
        metrics["traversal_speedup"] = {
            "value": round(best_speedup, 2),
            "floor": SPEEDUP_TARGET,
        }

    largest = records[-1]
    emit_bench_json(
        "scale",
        n=largest.num_nodes,
        wall_clock_s=largest.batched_seconds,
        bits=largest.total_bits,
        metrics=metrics,
        phases=phases_from_tracer(tracer) or None,
    )
    if tracer.spans:
        emit_telemetry_jsonl("scale", tracer)


# --------------------------------------------------------------------------- #
# Vectorized core: the million-node epoch
# --------------------------------------------------------------------------- #
MILLION = 1_000_000
VECTORIZED_N = max(SIZES) if SMOKE else MILLION
EPOCH_BUDGET_SECONDS = 1.0
STEADY_EPOCHS = 5
CHURN_FRACTION = 0.01


def test_vectorized_million_node_epoch(benchmark):
    """A 1M-node fused epoch (detect + repair + convergecast) under 1 s.

    The steady-state epoch is the quantity the paper's continuous-monitoring
    regime pays every round: a full heartbeat sweep over all alive edges, the
    attach-mask repair sweep, and the change-driven convergecast over ~1% of
    the field.  All three phases run as whole-array level passes on the
    :class:`~repro.network.VectorField`, so the epoch cost is a handful of
    numpy passes — not a million Python callbacks.
    """
    pytest.importorskip("numpy", reason="the vectorized core needs the fast extra")
    import numpy as np

    from repro.network import VectorField

    tracer = SpanTracer()
    field = VectorField.balanced(VECTORIZED_N, branching=8, telemetry=tracer)
    field.register_count_query("count")
    rng = np.random.default_rng(0)
    field.advance_epoch(
        changed_positions=np.arange(VECTORIZED_N),
        new_counts=rng.integers(0, 50, VECTORIZED_N),
    )

    churn = max(1, int(VECTORIZED_N * CHURN_FRACTION))

    def steady_epochs():
        for _ in range(STEADY_EPOCHS):
            changed = rng.choice(VECTORIZED_N, churn, replace=False)
            field.advance_epoch(
                changed_positions=changed,
                new_counts=rng.integers(0, 50, churn),
            )

    started = time.perf_counter()
    run_once(benchmark, steady_epochs)
    per_epoch = (time.perf_counter() - started) / STEADY_EPOCHS

    total_bits = sum(record["bits"] for record in field.records[1:])
    print()
    print(format_table(
        ["N", "epoch (ms)", "dirty/epoch", "tx/epoch", "bits/epoch"],
        [[
            VECTORIZED_N,
            round(per_epoch * 1000, 1),
            round(sum(r["dirty"] for r in field.records[1:]) / STEADY_EPOCHS),
            round(sum(r["transmissions"] for r in field.records[1:]) / STEADY_EPOCHS),
            round(total_bits / STEADY_EPOCHS),
        ]],
        title="E12  vectorized fused epoch: detect + repair + stream",
    ))
    benchmark.extra_info["vectorized_epoch_ms"] = round(per_epoch * 1000, 2)

    metrics = {}
    if not SMOKE:
        assert VECTORIZED_N >= MILLION
        assert per_epoch < EPOCH_BUDGET_SECONDS, (
            f"1M-node epoch took {per_epoch:.3f}s (budget {EPOCH_BUDGET_SECONDS}s)"
        )
        metrics["vectorized_epochs_per_second"] = {
            "value": round(1.0 / per_epoch, 2),
            "floor": 1.0 / EPOCH_BUDGET_SECONDS,
        }

    emit_bench_json(
        "scale",
        n=VECTORIZED_N,
        wall_clock_s=per_epoch,
        bits=total_bits,
        metrics=metrics,
        phases=phases_from_tracer(tracer) or None,
    )
    if tracer.spans:
        emit_telemetry_jsonl("scale_vectorized", tracer)


# --------------------------------------------------------------------------- #
# Sharded backend: bit-identical to the single-process batched engine
# --------------------------------------------------------------------------- #
SHARDED_N = min(10_000, max(SIZES)) if SMOKE else 10_000
SHARDED_EPOCHS = 4


def test_sharded_ledger_identity(benchmark):
    """Per-epoch ledger merges leave the sharded backend bit-identical.

    Twin networks at n = 10,000 run the same drift stream, one under the
    single-process batched engine and one under ``execution="sharded"`` with
    fork workers; the merged worker ledgers must reproduce the batched
    ledger exactly — per-node bits, totals, messages, rounds and
    per-protocol breakdowns.  The sharded run's ``shard.sweep`` /
    ``shard.merge`` spans land in the BENCH_scale.json phase table.
    """
    pytest.importorskip("numpy", reason="the sharded backend needs the fast extra")

    import random

    from repro.streaming.engine import ContinuousQueryEngine
    from repro.streaming.queries import CountQuery
    from repro.streaming.vector_engine import VectorStreamEngine

    tracer = SpanTracer()

    def build(execution, telemetry=None):
        network = SensorNetwork.from_items(
            [0] * SHARDED_N,
            topology="random_geometric",
            seed=0,
            execution=execution,
            telemetry=telemetry,
        )
        return network

    def run_twins():
        batched_net = build("batched")
        sharded_net = build("sharded", telemetry=tracer)
        engines = [
            ContinuousQueryEngine(batched_net, epsilon=0.1),
            VectorStreamEngine(sharded_net, epsilon=0.1, shard_processes=2),
        ]
        rng_state = random.Random(17)
        epochs = []
        for _ in range(SHARDED_EPOCHS):
            updates = {
                rng_state.randrange(SHARDED_N): [
                    rng_state.randrange(100)
                    for _ in range(rng_state.randrange(4))
                ]
                for _ in range(SHARDED_N // 20)
            }
            epochs.append(updates)
        for engine in engines:
            engine.register("count", CountQuery())
            for updates in epochs:
                engine.advance_epoch(dict(updates))
            if hasattr(engine, "close"):
                engine.close()
        return batched_net, sharded_net

    started = time.perf_counter()
    batched_net, sharded_net = run_once(benchmark, run_twins)
    elapsed = time.perf_counter() - started
    left = batched_net.ledger.snapshot()
    right = sharded_net.ledger.snapshot()
    identical = (
        left.per_node_bits == right.per_node_bits
        and left.total_bits == right.total_bits
        and left.max_node_bits == right.max_node_bits
        and left.messages == right.messages
        and left.rounds == right.rounds
        and left.per_protocol_bits == right.per_protocol_bits
    )
    assert identical, "sharded ledger diverged from the batched reference"

    print()
    print(format_table(
        ["N", "epochs", "total bits", "ledgers equal"],
        [[SHARDED_N, SHARDED_EPOCHS, left.total_bits, identical]],
        title="E13  sharded backend: merged worker ledgers vs batched",
    ))
    emit_bench_json(
        "scale",
        n=SHARDED_N,
        wall_clock_s=elapsed,
        bits=left.total_bits,
        metrics={"sharded_ledger_identity": {"value": 1.0, "floor": 1.0}},
        phases=phases_from_tracer(tracer) or None,
    )
    if tracer.spans:
        emit_telemetry_jsonl("scale_sharded", tracer)
