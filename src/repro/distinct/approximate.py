"""Approximate COUNT DISTINCT with O(log log n) bits per node.

Section 5 contrasts the Ω(n) lower bound for exact distinct counting with the
extremely cheap approximate version: hashing each item and feeding the hash to
a LogLog sketch counts distinct values (duplicates hash identically and
collapse), with the usual ``1.3/sqrt(m)`` relative error and
``m · O(log log n)`` bits per node.  The paper quotes the concrete guarantee of
Durand–Flajolet: with ``k²`` registers the estimate is within a factor
``(1 ± 3.15/k)`` of the truth with probability at least 99%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.base import ItemView, ProtocolResult, raw_items


@dataclass(frozen=True)
class ApproxDistinctOutcome:
    """Estimate plus the accuracy promise of Fact 2.2 / Section 5."""

    estimate: float
    relative_sigma: float
    guaranteed_factor: float  # the 3.15/k of the paper, for m = k² registers


class ApproxDistinctCountProtocol:
    """Distributed LogLog/HyperLogLog distinct counting."""

    def __init__(
        self,
        num_registers: int = 64,
        sketch: str = "loglog",
        view: ItemView = raw_items,
        seed: int | None = 0,
    ) -> None:
        if num_registers < 4:
            raise ConfigurationError("at least 4 registers are required")
        self.num_registers = num_registers
        self._protocol = ApproxCountProtocol(
            num_registers=num_registers,
            mode="distinct",
            sketch=sketch,
            view=view,
            seed=seed,
        )

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is an :class:`ApproxDistinctOutcome`."""
        result = self._protocol.run(network)
        k = math.sqrt(self.num_registers)
        outcome = ApproxDistinctOutcome(
            estimate=result.value.estimate,
            relative_sigma=result.value.relative_sigma,
            guaranteed_factor=3.15 / k,
        )
        return ProtocolResult(
            value=outcome,
            max_node_bits=result.max_node_bits,
            total_bits=result.total_bits,
            messages=result.messages,
            rounds=result.rounds,
        )
