"""Common protocol plumbing.

A protocol in this package is an object with a ``run(network)`` method that
returns a :class:`ProtocolResult`.  The result couples the answer written to
the root's output register with the communication cost the invocation added to
the ledger, so callers (the core algorithms and the experiment harness) never
have to diff ledger snapshots by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork

# A view maps a node to the list of (integer) values the protocol should
# operate on.  The default view returns the node's raw items; the core
# algorithms install transformed views (logarithms, rescaled values, active
# subsets) which are computed locally and therefore cost no communication.
ItemView = Callable[[SensorNode], Iterable[int]]


def raw_items(node: SensorNode) -> list[int]:
    """The default item view: the node's own input items."""
    return list(node.items)


@dataclass(frozen=True)
class ProtocolResult:
    """Answer of one protocol invocation plus its communication cost."""

    value: Any
    max_node_bits: int
    total_bits: int
    messages: int
    rounds: int

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ProtocolResult(value={self.value!r}, max_node_bits={self.max_node_bits}, "
            f"total_bits={self.total_bits}, messages={self.messages}, rounds={self.rounds})"
        )


class MeteredRun:
    """Context manager measuring the ledger delta of one protocol invocation.

    Built on :meth:`CommunicationLedger.mark`, which records per-node
    baselines lazily for the nodes the protocol actually touches — entering,
    exiting and :meth:`result` are therefore O(touched nodes), not
    O(network size).  Metered runs nest: an outer protocol that invokes
    sub-protocols (each with its own :class:`MeteredRun`) still measures its
    full interval.
    """

    def __init__(self, network: SensorNetwork) -> None:
        self.network = network
        self._mark = None

    def __enter__(self) -> "MeteredRun":
        self._mark = self.network.ledger.mark()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Baselines recorded so far stay valid after release, so result()
        # may be called either inside or right after the with-block.
        self.network.ledger.release(self._mark)

    def result(self, value: Any) -> ProtocolResult:
        ledger = self.network.ledger
        mark = self._mark
        return ProtocolResult(
            value=value,
            max_node_bits=ledger.max_node_delta_since(mark),
            total_bits=ledger.total_bits - mark.total_bits,
            messages=ledger.total_messages - mark.messages,
            rounds=ledger.rounds - mark.rounds,
        )
