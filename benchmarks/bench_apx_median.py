"""E5 — Theorems 4.5 / 4.6: the randomized (α, β)-median of Fig. 2.

Reproduces the probabilistic guarantee: across repeated runs the output is an
(α, β)-median (α = 3σ of the counting sketch) with frequency at least ≈ 1 − ε,
and the mean rank error shrinks as the sketch grows.  Also sweeps the target
rank to exercise the k-order-statistic generalisation of Theorem 4.6.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_apx_median_trials
from repro.analysis.report import format_table
from repro.core.apx_median import ApproximateOrderStatisticProtocol
from repro.core.definitions import is_approximate_order_statistic
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology
from repro.workloads.generators import generate_workload

NUM_ITEMS = 225
TRIALS = 20


def test_apx_median_success_probability(benchmark):
    def sweep():
        return [
            run_apx_median_trials(
                NUM_ITEMS,
                trials=TRIALS,
                epsilon=0.2,
                num_registers=num_registers,
                seed=3,
            )
            for num_registers in (64, 256)
        ]

    summaries = run_once(benchmark, sweep)
    rows = [
        [
            s.num_registers,
            s.trials,
            s.success_rate,
            s.alpha_guarantee,
            s.mean_rank_error,
            s.mean_value_error,
            int(s.mean_max_node_bits),
        ]
        for s in summaries
    ]
    print()
    print(format_table(
        ["m", "trials", "success rate", "alpha=3σ", "mean rank err", "mean value err", "mean max bits/node"],
        rows,
        title=f"E5  Theorem 4.5 — APX_MEDIAN success probability (N = {NUM_ITEMS}, ε = 0.2)",
    ))
    for summary in summaries:
        benchmark.extra_info[f"m={summary.num_registers}_success_rate"] = summary.success_rate
        # Paper shape: success probability at least 1 − ε (with slack for the
        # practical repetition policy).
        assert summary.success_rate >= 1 - 0.2 - 0.1
    # Larger sketches give a tighter rank error.
    assert summaries[1].mean_rank_error <= summaries[0].mean_rank_error + 0.02


def test_apx_order_statistics_across_ranks(benchmark):
    items = generate_workload("uniform", NUM_ITEMS, max_value=50_000, seed=5)
    network = SensorNetwork.from_items(items, topology=grid_topology(15))

    def sweep():
        results = []
        for quantile in (0.1, 0.25, 0.5, 0.75, 0.9):
            network.reset_ledger()
            protocol = ApproximateOrderStatisticProtocol(
                epsilon=0.2, quantile=quantile, num_registers=256, seed=11
            )
            outcome = protocol.run(network).value
            ok = is_approximate_order_statistic(
                items, quantile * len(items), outcome.value,
                alpha=max(0.3, outcome.alpha_guarantee), beta=0.1,
            )
            results.append((quantile, outcome.value, ok, network.ledger.max_node_bits))
        return results

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["quantile", "answer", "(α,β)-ok?", "max bits/node"],
        [list(row) for row in results],
        title="E5b  Theorem 4.6 — approximate order statistics",
    ))
    successes = sum(1 for _, _, ok, _ in results if ok)
    benchmark.extra_info["rank_sweep_successes"] = f"{successes}/{len(results)}"
    assert successes >= len(results) - 1
