#!/usr/bin/env python3
"""Docs drift gate: links, a complete ARCHITECTURE map, live sweep specs.

Run from anywhere::

    python scripts/check_docs.py

Three checks, all cheap and all fatal on failure:

1. every relative markdown link in ``README.md`` and ``docs/*.md`` points
   at a file that exists (anchors are stripped; external URLs skipped);
2. every *public* module under ``src/repro/`` — any ``.py`` whose dotted
   path has no underscore-prefixed component — is mentioned by dotted name
   in ``docs/ARCHITECTURE.md``, so the package map cannot silently drift
   as modules are added;
3. every sweep spec referenced in ``docs/SWEEPS.md`` as a backticked
   ```` `sweep:<name>` ```` token resolves to a builtin spec that expands
   to a non-empty run matrix, so the sweeps guide cannot document a spec
   that no longer exists (and the builtins are smoke-expanded on every
   docs build).

CI runs this in the ``docs`` job next to smoke-running every example.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SWEEP_REF = re.compile(r"`sweep:([A-Za-z0-9_-]+)`")


def doc_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def check_links() -> list[str]:
    """Every relative markdown link must resolve from its document."""
    failures: list[str] = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            if not (doc.parent / path).resolve().exists():
                failures.append(
                    f"{doc.relative_to(ROOT)}: broken link -> {target}"
                )
    return failures


def public_modules() -> list[str]:
    """Dotted names of every public module under src/repro.

    A package's ``__init__.py`` maps to the package name itself; any path
    component starting with an underscore (``_util``, ``__pycache__``)
    makes the module private and exempt.
    """
    modules: set[str] = set()
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        parts = path.relative_to(ROOT / "src").with_suffix("").parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if any(part.startswith("_") for part in parts):
            continue
        modules.add(".".join(parts))
    return sorted(modules)


def check_architecture_mentions() -> list[str]:
    """docs/ARCHITECTURE.md must name every public module.

    Word-boundary matching: a mention of ``repro.faults.election`` does
    not count as mentioning the ``repro.faults`` package itself, so parent
    packages cannot pass vacuously as substrings of their children.
    """
    text = (ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    return [
        f"docs/ARCHITECTURE.md does not mention {module}"
        for module in public_modules()
        if not re.search(rf"(?<![\w.]){re.escape(module)}(?![\w.])", text)
    ]


def sweep_references() -> list[str]:
    """Spec names referenced as ```` `sweep:<name>` ```` in docs/SWEEPS.md."""
    sweeps_doc = ROOT / "docs" / "SWEEPS.md"
    if not sweeps_doc.exists():
        return []
    return sorted(set(SWEEP_REF.findall(sweeps_doc.read_text(encoding="utf-8"))))


def check_sweep_specs() -> list[str]:
    """Every documented sweep spec must exist and expand to a real matrix."""
    names = sweep_references()
    failures: list[str] = []
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.exceptions import ConfigurationError
        from repro.sweeps import BUILTIN_SWEEPS, get_sweep
    except Exception as exc:  # pragma: no cover - import plumbing broke
        return [f"docs/SWEEPS.md: cannot import repro.sweeps ({exc})"]
    if not names:
        failures.append(
            "docs/SWEEPS.md references no `sweep:<name>` specs; the sweeps "
            "guide must name the builtin specs it documents"
        )
    for name in names:
        if name not in BUILTIN_SWEEPS:
            failures.append(
                f"docs/SWEEPS.md references `sweep:{name}` but it is not a "
                f"builtin sweep (known: {sorted(BUILTIN_SWEEPS)})"
            )
            continue
        try:
            cells = get_sweep(name).expand()
        except ConfigurationError as exc:
            failures.append(f"docs/SWEEPS.md: `sweep:{name}` fails to expand ({exc})")
            continue
        if not cells:
            failures.append(
                f"docs/SWEEPS.md: `sweep:{name}` expands to an empty matrix"
            )
    return failures


def main() -> int:
    failures = check_links() + check_architecture_mentions() + check_sweep_specs()
    modules = public_modules()
    sweeps = sweep_references()
    links = sum(
        len(LINK.findall(doc.read_text(encoding="utf-8")))
        for doc in doc_files()
    )
    if failures:
        print(f"docs check FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"docs check ok: {links} links across {len(doc_files())} documents "
        f"resolve, all {len(modules)} public modules mentioned in "
        f"docs/ARCHITECTURE.md, {len(sweeps)} documented sweep spec(s) expand"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
