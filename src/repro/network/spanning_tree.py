"""Spanning-tree construction.

The TAG-style protocols of Fact 2.1 run over a spanning tree rooted at the
query node.  The paper remarks that a *bounded-degree* spanning tree is
required to keep the individual communication complexity low (otherwise a hub
node pays for all of its children's traffic).

Two constructions are provided:

``bfs_tree``
    Plain breadth-first-search tree — minimal depth, but the degree can be as
    large as the graph degree (think of the star topology).

``bounded_degree_tree``
    A heuristic that starts from the BFS tree and re-parents excess children
    to nearby tree nodes with spare capacity, using only edges of the original
    graph.  When the graph itself cannot support the requested bound (e.g. the
    star), the construction falls back to the smallest feasible degree and
    reports it, so experiments can quantify the cost of hub nodes (ablation
    E9 in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from repro._util.validation import require_positive
from repro.exceptions import TopologyError


@dataclass
class SpanningTree:
    """A rooted spanning tree described by parent/children maps."""

    root: int
    parent: dict[int, int | None]
    children: dict[int, list[int]]
    depth: dict[int, int]

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    @property
    def height(self) -> int:
        """Maximum depth of any node (root has depth 0)."""
        return max(self.depth.values()) if self.depth else 0

    def max_degree(self) -> int:
        """Maximum tree degree (children count plus one for the parent edge)."""
        best = 0
        for node, kids in self.children.items():
            degree = len(kids) + (0 if self.parent[node] is None else 1)
            best = max(best, degree)
        return best

    def nodes_bottom_up(self) -> list[int]:
        """Nodes ordered so every node appears before its parent.

        The order is *canonical* — deepest level first, ascending node id
        within a level — so two trees with equal parent/depth content
        traverse (and therefore charge radio transmissions) identically, no
        matter how their dictionaries were built.  The incremental fault
        repair relies on this: its batched and per-edge paths construct the
        same repaired tree through different code, and every later sweep
        must stay bit-for-bit ledger-equivalent between them.
        """
        depth = self.depth
        return sorted(self.parent, key=lambda node: (-depth[node], node))

    def nodes_top_down(self) -> list[int]:
        """Nodes ordered so every node appears after its parent.

        Canonical like :meth:`nodes_bottom_up`: by level, ascending node id
        within a level.
        """
        depth = self.depth
        return sorted(self.parent, key=lambda node: (depth[node], node))

    def subtree_nodes(self, node: int) -> list[int]:
        """All nodes in the subtree rooted at ``node`` (including it)."""
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children[current])
        return result

    def path_to_root(self, node: int) -> list[int]:
        """The node sequence from ``node`` up to (and including) the root."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def check_invariants(self) -> None:
        """Graph-free structural validation: parent/children/depth consistency.

        Checks that the three maps agree on the node set, that parent pointers
        and child lists mirror each other exactly (every non-root node appears
        in precisely one child list — its parent's), and that depths increase
        by one along every edge with the root at depth zero.  Depth consistency
        plus a parent for every non-root node implies the structure is an
        acyclic tree reaching the root, so this runs in O(n) with no graph.

        :class:`~repro.network.flat_tree.FlatTree.from_spanning_tree` calls
        this before freezing a tree into arrays, so a malformed tree (e.g. a
        buggy incremental repair) fails fast instead of corrupting batched
        sweeps.
        """
        nodes = set(self.parent)
        if set(self.children) != nodes or set(self.depth) != nodes:
            raise TopologyError("parent/children/depth maps cover different nodes")
        if self.root not in nodes:
            raise TopologyError(f"root {self.root} is not a tree node")
        if self.parent[self.root] is not None:
            raise TopologyError("root must have no parent")
        if self.depth[self.root] != 0:
            raise TopologyError("root must have depth 0")
        listed_parent: dict[int, int] = {}
        for node, kids in self.children.items():
            for child in kids:
                if child in listed_parent:
                    raise TopologyError(
                        f"node {child} appears in more than one child list"
                    )
                listed_parent[child] = node
        if self.root in listed_parent:
            raise TopologyError("root appears in a child list")
        for node, parent in self.parent.items():
            if parent is None:
                if node != self.root:
                    raise TopologyError(f"non-root node {node} has no parent")
                continue
            if parent not in nodes:
                raise TopologyError(
                    f"parent {parent} of node {node} is not a tree node"
                )
            if listed_parent.get(node) != parent:
                raise TopologyError(
                    f"child list of {parent} does not contain {node}"
                )
            if self.depth[node] != self.depth[parent] + 1:
                raise TopologyError(
                    f"depth of {node} is {self.depth[node]}, expected "
                    f"{self.depth[parent] + 1} (one below parent {parent})"
                )

    def validate(self, graph: nx.Graph, covering: set[int] | None = None) -> None:
        """Check that this is a spanning tree of ``graph`` rooted at ``root``.

        ``covering`` overrides the node set the tree must span; the default is
        every graph node.  A tree repaired after crashes spans only the alive,
        root-connected subset, which is what the fault test-suite passes here.
        """
        expected = set(graph.nodes()) if covering is None else set(covering)
        if set(self.parent) != expected:
            raise TopologyError("tree does not span the expected node set")
        if self.parent[self.root] is not None:
            raise TopologyError("root must have no parent")
        for node, parent in self.parent.items():
            if parent is None:
                continue
            if not graph.has_edge(node, parent):
                raise TopologyError(
                    f"tree edge ({node}, {parent}) is not an edge of the graph"
                )
            if node not in self.children[parent]:
                raise TopologyError(
                    f"child list of {parent} does not contain {node}"
                )
        # Reachability: following parents must reach the root from everywhere.
        for node in self.parent:
            seen = set()
            current: int | None = node
            while current is not None:
                if current in seen:
                    raise TopologyError("cycle detected in parent pointers")
                seen.add(current)
                current = self.parent[current]
            if self.root not in seen:
                raise TopologyError(f"node {node} cannot reach the root")


def tree_from_parents(root: int, parent: dict[int, int | None]) -> SpanningTree:
    """Build a :class:`SpanningTree` from a parent map (children sorted, depths
    recomputed).  Raises :class:`~repro.exceptions.TopologyError` when the map
    does not describe one connected tree rooted at ``root``.  Used by the BFS
    constructions here and by the incremental fault repair."""
    children: dict[int, list[int]] = {node: [] for node in parent}
    for node, par in parent.items():
        if par is not None:
            children[par].append(node)
    for kids in children.values():
        kids.sort()
    depth: dict[int, int] = {root: 0}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for child in children[current]:
            depth[child] = depth[current] + 1
            queue.append(child)
    if len(depth) != len(parent):
        raise TopologyError("parent map does not describe a connected tree")
    return SpanningTree(root=root, parent=parent, children=children, depth=depth)


def bfs_tree(graph: nx.Graph, root: int = 0) -> SpanningTree:
    """Breadth-first spanning tree rooted at ``root``."""
    if root not in graph:
        raise TopologyError(f"root {root} is not a node of the graph")
    if not nx.is_connected(graph):
        raise TopologyError("cannot build a spanning tree of a disconnected graph")
    parent: dict[int, int | None] = {root: None}
    queue = deque([root])
    while queue:
        current = queue.popleft()
        for neighbor in sorted(graph.neighbors(current)):
            if neighbor not in parent:
                parent[neighbor] = current
                queue.append(neighbor)
    return tree_from_parents(root, parent)


def bounded_degree_tree(
    graph: nx.Graph, root: int = 0, max_degree: int = 3
) -> SpanningTree:
    """Spanning tree whose degree is heuristically capped at ``max_degree``.

    Starting from the BFS tree, any node with too many children tries to hand
    excess children over to graph-neighbours that are already in the tree, are
    not descendants of the child being moved, and still have spare capacity.
    The resulting tree is always a valid spanning tree; the degree bound is
    best-effort because some graphs (e.g. the star) admit no low-degree
    spanning tree at all.
    """
    require_positive(max_degree, "max_degree")
    if max_degree < 2:
        raise TopologyError("max_degree must be at least 2 for a rooted tree")
    tree = bfs_tree(graph, root)
    parent = dict(tree.parent)

    def degree_of(node: int, children: dict[int, list[int]]) -> int:
        return len(children[node]) + (0 if parent[node] is None else 1)

    children = {node: list(kids) for node, kids in tree.children.items()}

    def descendants(node: int) -> set[int]:
        result = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(children[current])
        return result

    changed = True
    iteration_guard = 4 * graph.number_of_nodes() + 16
    while changed and iteration_guard > 0:
        changed = False
        iteration_guard -= 1
        for node in list(children):
            while degree_of(node, children) > max_degree and children[node]:
                moved = False
                # Try to re-parent the deepest-listed child first so shallow
                # structure near the root is preserved.
                for child in sorted(children[node], reverse=True):
                    forbidden = descendants(child)
                    candidates = [
                        neighbor
                        for neighbor in sorted(graph.neighbors(child))
                        if neighbor not in forbidden
                        and neighbor != node
                        and degree_of(neighbor, children) < max_degree
                    ]
                    if not candidates:
                        continue
                    new_parent = min(
                        candidates, key=lambda cand: degree_of(cand, children)
                    )
                    children[node].remove(child)
                    children[new_parent].append(child)
                    parent[child] = new_parent
                    moved = True
                    changed = True
                    break
                if not moved:
                    break
    rebuilt = tree_from_parents(root, parent)
    rebuilt.validate(graph)
    return rebuilt
