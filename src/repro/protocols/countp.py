"""COUNTP — counting under a locally-computable predicate (Section 3.1).

``COUNTP(X, P)`` returns the number of items satisfying ``P``.  The paper
observes that any COUNT implementation yields a COUNTP implementation: run the
counting protocol over only the elements that satisfy ``P``.  For the
asymptotic cost to stay comparable to COUNT, the predicate description must
fit in ``O(C_COUNT(N))`` bits; the broadcast phase below charges exactly the
predicate's own :meth:`~repro.protocols.predicates.Predicate.encoded_bits`.
"""

from __future__ import annotations

from repro._util.bits import varint_bits
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.protocols.predicates import Predicate


class CountPredicateProtocol:
    """Exact predicate counting over the spanning tree."""

    def __init__(self, predicate: Predicate, view: ItemView = raw_items) -> None:
        self.predicate = predicate
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        with MeteredRun(network) as metered:
            broadcast(
                network,
                {"query": "COUNTP", "predicate": self.predicate},
                self.predicate.encoded_bits(),
                protocol="COUNTP",
            )

            def local(node: SensorNode) -> int:
                return sum(1 for value in self._view(node) if self.predicate(value))

            answer = convergecast(
                network,
                local,
                lambda a, b: a + b,
                lambda value: varint_bits(int(value)),
                protocol="COUNTP",
            )
        return metered.result(answer)
