"""Bit-accounting helpers.

The paper measures communication complexity in *bits transmitted and received
per node* (Section 2.1).  Every protocol in this package therefore expresses
message sizes in bits, using the helpers below so the accounting is uniform.

Two encodings are provided:

``fixed_width_bits``
    The number of bits needed for any value of a known domain ``[0, max_value]``
    — what a real packet format with a fixed field width would use.

``varint_bits``
    A self-delimiting encoding (Elias-gamma style) whose length adapts to the
    value actually sent.  The approximate protocols of Section 4 rely on the
    fact that sending ``floor(log x)`` instead of ``x`` shrinks messages to
    ``O(log log X)`` bits, which only shows up if the encoding is adaptive.
"""

from __future__ import annotations

from repro._util.validation import require_integer, require_non_negative


def bit_width(value: int) -> int:
    """Return the number of bits in the binary representation of ``value``.

    Zero is defined to occupy one bit, so every value costs at least one bit
    to transmit.

    >>> bit_width(0), bit_width(1), bit_width(255), bit_width(256)
    (1, 1, 8, 9)
    """
    require_integer(value, "value")
    require_non_negative(value, "value")
    return max(1, int(value).bit_length())


def fixed_width_bits(max_value: int) -> int:
    """Return the field width (bits) needed to hold any value in ``[0, max_value]``.

    >>> fixed_width_bits(0), fixed_width_bits(1), fixed_width_bits(1023)
    (1, 1, 10)
    """
    require_integer(max_value, "max_value")
    require_non_negative(max_value, "max_value")
    return bit_width(max_value)


def varint_bits(value: int) -> int:
    """Return the length of a self-delimiting (Elias-gamma style) encoding.

    A value ``v`` with binary length ``L`` costs ``2L - 1`` bits: ``L - 1``
    zero bits announcing the length followed by the ``L`` bits of the value.
    This keeps messages carrying small values (such as the ``floor(log x)``
    items of Section 4.2) proportionally small.

    >>> varint_bits(0), varint_bits(1), varint_bits(7), varint_bits(1000)
    (1, 1, 5, 19)
    """
    width = bit_width(value)
    return 2 * width - 1


def signed_varint_bits(value: int) -> int:
    """Return the length of a self-delimiting encoding of a *signed* value.

    Deltas between successive summaries can be negative, so they are zigzag
    mapped (``v ≥ 0 → 2v``, ``v < 0 → −2v − 1``) onto the non-negative
    integers and then charged at :func:`varint_bits`.  Small drifts in either
    direction therefore cost few bits — the property the streaming engine's
    delta encoding relies on.

    >>> signed_varint_bits(0), signed_varint_bits(1), signed_varint_bits(-1)
    (1, 3, 1)
    """
    require_integer(value, "value")
    zigzag = 2 * value if value >= 0 else -2 * value - 1
    return varint_bits(zigzag)


def encoded_int_bits(value: int, max_value: int | None = None) -> int:
    """Return the cost in bits of sending ``value``.

    When the receiver knows an upper bound ``max_value`` a fixed-width field is
    used; otherwise the self-delimiting encoding is charged.
    """
    if max_value is None:
        return varint_bits(value)
    require_integer(max_value, "max_value")
    if value > max_value:
        raise ValueError(
            f"value {value} exceeds declared maximum {max_value}"
        )
    return fixed_width_bits(max_value)
