"""E12 — fault tolerance: incremental repair + delta re-sync vs rebuild.

The fault engine's claim is that surviving failures should cost bits
proportional to the *damage*, not the network: when 10% of a 10,000-node
field crashes at once, re-attaching the orphaned subtrees through local
adoption handshakes and re-synchronising only the summaries along repaired
paths must beat tearing the BFS tree down, flooding a rebuild over every
alive edge and recomputing every summary from scratch.  This benchmark
drives both repair policies through the same scripted crash storm (10% of
the field at epoch 2, recovering at epoch 5) over the same drifting stream
and checks:

* **savings** — the incremental policy spends ≥ 5× fewer bits across the
  fault epochs than rebuild-and-recompute (the acceptance criterion;
  measured well above that);
* **discipline** — the incremental arm never trips its rebuild fallback on
  this storm, while the naive arm rebuilds at both the storm and the
  recovery;
* **accuracy** — both arms keep the COUNT answer within the ε budget against
  the attached-population ground truth on every epoch, i.e. resilience is
  not bought with wrong answers.

Set ``REPRO_FAULT_SIZES`` (comma-separated node counts) to shrink the sweep
— the CI smoke job runs ``REPRO_FAULT_SIZES=256``, which still asserts all
three properties at a size where the run takes a fraction of a second.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_fault_tolerance_study
from repro.analysis.report import format_table

_ENV_SIZES = os.environ.get("REPRO_FAULT_SIZES")
FULL_SIZES = (10_000,)
SIZES = (
    tuple(int(size) for size in _ENV_SIZES.split(",")) if _ENV_SIZES else FULL_SIZES
)
EPOCHS = 8
STORM_EPOCH = 2
REJOIN_EPOCH = 5
CRASH_FRACTION = 0.10
SAVINGS_TARGET = 5.0


def test_incremental_repair_beats_rebuild(benchmark):
    def sweep():
        return [
            run_fault_tolerance_study(
                num_nodes=num_nodes,
                epochs=EPOCHS,
                scenario="crash_storm",
                crash_fraction=CRASH_FRACTION,
                storm_epoch=STORM_EPOCH,
                rejoin_epoch=REJOIN_EPOCH,
                topology="random_geometric",
                seed=0,
            )
            for num_nodes in SIZES
        ]

    comparisons = run_once(benchmark, sweep)

    rows = [
        [
            comparison.num_nodes,
            comparison.incremental_fault_bits,
            comparison.rebuild_fault_bits,
            round(comparison.savings_factor, 1),
            comparison.incremental_repair_bits,
            comparison.rebuild_repair_bits,
            comparison.incremental_max_count_error,
            comparison.rebuild_rebuilds,
        ]
        for comparison in comparisons
    ]
    print()
    print(format_table(
        [
            "N",
            "incr. bits",
            "rebuild bits",
            "savings",
            "incr. repair",
            "rebuild repair",
            "count err",
            "rebuilds",
        ],
        rows,
        title=(
            f"E12  10% crash storm + recovery: incremental repair vs "
            f"rebuild-and-recompute ({EPOCHS} epochs)"
        ),
    ))

    for comparison in comparisons:
        benchmark.extra_info[f"savings_{comparison.num_nodes}"] = round(
            comparison.savings_factor, 2
        )
        benchmark.extra_info[f"incremental_bits_{comparison.num_nodes}"] = (
            comparison.incremental_fault_bits
        )
        benchmark.extra_info[f"rebuild_bits_{comparison.num_nodes}"] = (
            comparison.rebuild_fault_bits
        )
        # Acceptance: ≥ 5× fewer bits across the fault epochs.
        assert comparison.savings_factor >= SAVINGS_TARGET
        # The incremental arm stayed incremental (its fallback threshold was
        # never tripped); the naive arm rebuilt at the storm and the rejoin.
        assert comparison.incremental_rebuilds == 0
        assert comparison.rebuild_rebuilds >= 2
        # Resilience does not cost accuracy: both arms stay within ε · n of
        # the attached ground truth on every epoch.
        assert comparison.incremental_max_count_error <= comparison.count_error_budget
        assert comparison.rebuild_max_count_error <= comparison.count_error_budget


def test_savings_across_fault_scenarios(benchmark):
    """Regional outages, churn and link storms also favour incremental repair."""

    def sweep():
        return {
            scenario: run_fault_tolerance_study(
                num_nodes=256,
                epochs=EPOCHS,
                scenario=scenario,
                crash_fraction=CRASH_FRACTION,
                storm_epoch=STORM_EPOCH,
                rejoin_epoch=REJOIN_EPOCH,
                topology="random_geometric",
                seed=1,
            )
            for scenario in ("regional_outage", "churn", "link_storm")
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            scenario,
            comparison.incremental_fault_bits,
            comparison.rebuild_fault_bits,
            round(comparison.savings_factor, 1),
            comparison.incremental_max_count_error,
        ]
        for scenario, comparison in results.items()
    ]
    print()
    print(format_table(
        ["scenario", "incr. bits", "rebuild bits", "savings", "count err"],
        rows,
        title="E12b  savings factor by fault scenario (N = 256, 8 epochs)",
    ))
    for scenario, comparison in results.items():
        benchmark.extra_info[f"{scenario}_savings"] = round(
            comparison.savings_factor, 2
        )
        assert comparison.savings_factor >= SAVINGS_TARGET
        assert comparison.incremental_max_count_error <= comparison.count_error_budget
