"""E10 — continuous queries: incremental maintenance vs per-epoch recompute.

The streaming engine's claim is that steady-state communication should be
proportional to *change*, not network size.  This benchmark drives the
incremental :class:`~repro.streaming.ContinuousQueryEngine` and the naive
:class:`~repro.streaming.RecomputeEngine` through the same slowly-drifting
100-node stream for 60 epochs, with the same four standing queries (COUNT,
MEDIAN, COUNT DISTINCT, COUNTP), and checks:

* the incremental engine ships ≥ 5× fewer total bits than recomputing every
  epoch from scratch (the acceptance criterion; measured well above that);
* every per-epoch incremental answer still meets the ε-approximation
  guarantee — COUNT within ε·N, MEDIAN within the suppression-slack plus
  q-digest rank budget;
* the steady-state epochs (everything after epoch 0's cache warm-up) are
  cheaper still, since epoch 0 necessarily ships full summaries.
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    emit_bench_json,
    emit_telemetry_jsonl,
    phases_from_tracer,
    run_once,
)
from repro.analysis.experiments import run_streaming_comparison
from repro.analysis.report import format_table
from repro.telemetry import SpanTracer

NUM_NODES = 100
EPOCHS = 60
EPSILON = 0.1


def test_streaming_incremental_vs_recompute(benchmark):
    started = time.perf_counter()
    # Instrument the incremental arm: the bench JSON gains the per-phase
    # wall-clock/bit breakdown and CI archives the span trace.
    tracer = SpanTracer()
    comparison = run_once(
        benchmark,
        run_streaming_comparison,
        num_nodes=NUM_NODES,
        epochs=EPOCHS,
        workload="drift",
        epsilon=EPSILON,
        seed=0,
        telemetry=tracer,
    )

    incremental = comparison.incremental_trace
    naive = comparison.recompute_trace
    rows = [
        ["total bits", incremental.total_bits, naive.total_bits],
        ["total messages", incremental.total_messages, naive.total_messages],
        [
            "steady bits/epoch",
            round(incremental.steady_state_bits(warmup=1), 1),
            round(naive.steady_state_bits(warmup=1), 1),
        ],
        [
            "energy (mJ)",
            round(incremental.total_energy_nj / 1e6, 3),
            round(naive.total_energy_nj / 1e6, 3),
        ],
    ]
    print()
    print(format_table(
        ["measure", "incremental", "recompute"],
        rows,
        title=(
            f"E10  continuous queries, drift workload "
            f"(N = {NUM_NODES}, {EPOCHS} epochs, eps = {EPSILON})"
        ),
    ))

    benchmark.extra_info["savings_factor"] = round(comparison.savings_factor, 2)
    benchmark.extra_info["incremental_bits"] = comparison.incremental_bits
    benchmark.extra_info["recompute_bits"] = comparison.recompute_bits
    benchmark.extra_info["max_count_error"] = comparison.max_count_error
    benchmark.extra_info["max_median_rank_error"] = comparison.max_median_rank_error

    # Acceptance: ≥ 5× fewer total bits, at the same approximation guarantee.
    assert comparison.savings_factor >= 5.0
    assert comparison.max_count_error <= comparison.count_error_budget
    assert comparison.max_median_rank_error <= comparison.median_rank_error_budget + 0.5
    # Steady state is where the amortisation shows: epoch 0 ships full
    # summaries, later epochs only deltas from changed subtrees.
    assert incremental.steady_state_bits(warmup=1) < incremental[0].bits / 5
    # Both engines agree on what they are answering.
    assert incremental[-1].answers["count"] == naive[-1].answers["count"]

    emit_bench_json(
        "streaming",
        n=NUM_NODES,
        wall_clock_s=time.perf_counter() - started,
        bits=comparison.incremental_bits,
        metrics={
            "streaming_savings": {
                "value": round(comparison.savings_factor, 2),
                "floor": 5.0,
            },
        },
        phases=phases_from_tracer(tracer),
    )
    emit_telemetry_jsonl("streaming", tracer)


def test_streaming_savings_across_dynamics(benchmark):
    """Burst and churn also amortise; seasonal (dense change) still wins via deltas."""

    def sweep():
        return {
            workload: run_streaming_comparison(
                num_nodes=64,
                epochs=40,
                workload=workload,
                epsilon=EPSILON,
                seed=1,
            )
            for workload in ("burst", "churn", "seasonal")
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            workload,
            comparison.incremental_bits,
            comparison.recompute_bits,
            round(comparison.savings_factor, 2),
            comparison.max_count_error,
        ]
        for workload, comparison in results.items()
    ]
    print()
    print(format_table(
        ["workload", "incremental bits", "recompute bits", "savings", "count err"],
        rows,
        title="E10b  savings factor by stream dynamics (N = 64, 40 epochs)",
    ))
    for workload, comparison in results.items():
        benchmark.extra_info[f"{workload}_savings"] = round(comparison.savings_factor, 2)
        assert comparison.max_count_error <= max(1.0, comparison.count_error_budget)
    assert results["burst"].savings_factor >= 5.0
    assert results["churn"].savings_factor >= 5.0
    assert results["seasonal"].savings_factor >= 1.1
