"""Tests for the radio models and the energy model."""

import pytest

from repro.exceptions import DeliveryError
from repro.network.accounting import CommunicationLedger
from repro.network.energy import EnergyModel
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio


class TestReliableRadio:
    def test_always_delivers_once(self):
        radio = ReliableRadio()
        for _ in range(10):
            outcome = radio.transmit(0, 1)
            assert outcome.delivered
            assert outcome.attempts == 1
            assert outcome.copies_delivered == 1


class TestLossyRadio:
    def test_zero_loss_behaves_like_reliable(self):
        radio = LossyRadio(loss_rate=0.0, seed=1)
        assert radio.transmit(0, 1).attempts == 1

    def test_retries_until_delivery(self):
        radio = LossyRadio(loss_rate=0.7, seed=3, max_retries=64)
        outcomes = [radio.transmit(0, 1) for _ in range(50)]
        assert all(outcome.delivered for outcome in outcomes)
        assert any(outcome.attempts > 1 for outcome in outcomes)

    def test_mean_attempts_tracks_loss_rate(self):
        radio = LossyRadio(loss_rate=0.5, seed=5, max_retries=200)
        attempts = [radio.transmit(0, 1).attempts for _ in range(400)]
        mean_attempts = sum(attempts) / len(attempts)
        assert 1.6 < mean_attempts < 2.5  # geometric mean 1/(1-p) = 2

    def test_permanent_failure_raises(self):
        radio = LossyRadio(loss_rate=0.999, seed=1, max_retries=0)
        with pytest.raises(DeliveryError):
            for _ in range(100):
                radio.transmit(0, 1)

    def test_loss_rate_one_rejected(self):
        with pytest.raises(DeliveryError):
            LossyRadio(loss_rate=1.0)

    def test_reset_restores_stream(self):
        radio = LossyRadio(loss_rate=0.5, seed=9)
        first = [radio.transmit(0, 1).attempts for _ in range(20)]
        radio.reset()
        second = [radio.transmit(0, 1).attempts for _ in range(20)]
        assert first == second


class TestDuplicatingRadio:
    def test_no_duplication_at_zero_rate(self):
        radio = DuplicatingRadio(duplicate_rate=0.0, seed=1)
        assert all(radio.transmit(0, 1).copies_delivered == 1 for _ in range(20))

    def test_duplicates_appear(self):
        radio = DuplicatingRadio(duplicate_rate=0.5, seed=2)
        copies = [radio.transmit(0, 1).copies_delivered for _ in range(200)]
        assert set(copies) == {1, 2}
        fraction_duplicated = sum(1 for c in copies if c == 2) / len(copies)
        assert 0.35 < fraction_duplicated < 0.65


class TestEnergyModel:
    def test_transmit_more_expensive_than_receive(self):
        model = EnergyModel()
        assert model.transmit_cost(100) > model.receive_cost(100)

    def test_report_from_ledger(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 1000)
        ledger.charge(1, 2, 500)
        report = EnergyModel().report(ledger)
        assert set(report.per_node_nj) == {0, 1, 2}
        # Node 1 both received 1000 and sent 500 — it is the hottest node.
        assert report.peak_node_nj == report.per_node_nj[1]
        assert report.total_nj == pytest.approx(sum(report.per_node_nj.values()))

    def test_lifetime_proxy_inverse_of_peak(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 10)
        report = EnergyModel().report(ledger)
        assert report.network_lifetime_proxy == pytest.approx(1.0 / report.peak_node_nj)

    def test_empty_ledger_report(self):
        report = EnergyModel().report(CommunicationLedger())
        assert report.total_nj == 0.0
        assert report.network_lifetime_proxy == float("inf")
