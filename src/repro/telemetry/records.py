"""The shared base of every per-epoch measurement record.

:class:`~repro.streaming.StreamingTrace` and
:class:`~repro.faults.FaultTrace` each carry one frozen record per epoch.
Before the telemetry layer existed they invented those records separately;
now both subclass :class:`EpochRecordBase`, which owns the fields every
epoch shares (the ledger deltas, the energy, the suppression statistics)
and the serialization machinery (:meth:`EpochRecordBase.to_dict` /
:meth:`EpochRecordBase.to_jsonl`) — the field list is introspected from
the dataclass, so a new field added to either record serializes without
touching an exporter.

This module imports nothing from :mod:`repro.streaming` or
:mod:`repro.faults`; the dependency points the other way (telemetry is the
substrate, the engines are the clients), which keeps the package free of
import cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Iterator

from repro.telemetry.export import dumps_line, write_jsonl


def json_safe(value: Any) -> Any:
    """Coerce ``value`` into something :func:`json.dumps` accepts.

    Tuples and sets become lists, mappings recurse, and anything exotic
    (a sketch object in an answers dict, say) falls back to ``repr`` —
    a trace line must always serialize, even when an answer type does not.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [json_safe(item) for item in items]
    return repr(value)


@dataclass(frozen=True)
class EpochRecordBase:
    """Fields every per-epoch record shares, plus JSONL serialization.

    Subclasses set :attr:`record_type` — it becomes the ``"type"`` field
    of each JSONL line, so mixed trace files remain self-describing.
    """

    record_type: ClassVar[str] = "epoch_record"

    epoch: int
    #: Ledger deltas over the epoch.
    messages: int
    rounds: int
    #: Radio energy the epoch's traffic cost under the attached model.
    energy_nj: float
    #: Suppression statistics explaining the traffic volume.
    dirty_nodes: int
    transmissions: int
    suppressions: int

    def to_dict(self) -> dict:
        """JSON-safe dict of every field, tagged with :attr:`record_type`."""
        payload: dict[str, Any] = {"type": type(self).record_type}
        for spec in dataclasses.fields(self):
            payload[spec.name] = json_safe(getattr(self, spec.name))
        return payload

    def to_jsonl(self) -> str:
        """One JSONL line (no trailing newline)."""
        return dumps_line(self.to_dict())


class TraceSerialization:
    """JSONL export mixin for any trace holding :class:`EpochRecordBase` rows.

    Expects the host class to expose ``self.records`` (the mixin is what
    lets ``StreamingTrace`` and ``FaultTrace`` share exporters without
    duplicated field lists).
    """

    records: list

    def to_dicts(self) -> Iterator[dict]:
        """One JSON-safe dict per epoch record, in epoch order."""
        for record in self.records:
            yield record.to_dict()

    def to_jsonl(self) -> str:
        """The whole trace as a JSONL string (one line per epoch)."""
        return "".join(record.to_jsonl() + "\n" for record in self.records)

    def write_jsonl(self, path) -> int:
        """Write the trace to ``path`` as JSONL; returns the line count."""
        return write_jsonl(path, self.to_dicts())
