"""Deterministic exact median — Algorithm MEDIAN(X) of Fig. 1 (Theorem 3.2).

The median is the N/2-order statistic (Definition 2.3), so the protocol is the
binary-search selection of :mod:`repro.core.order_statistics` with the target
rank fixed to ``n / 2``, exactly as the pseudocode's Lines 3.2 and 4.1 use the
``n/2`` expression.

Guarantees reproduced (and asserted by the test-suite and experiment E3):

* the output is always an exact median of the input multiset;
* the per-node communication is ``O((log N)^2)`` bits — ``O(log N)`` probes,
  each costing ``O(log N)`` bits per node on a bounded-degree spanning tree;
* space and processing per node stay ``O(log N)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.order_statistics import (
    OrderStatisticOutcome,
    run_binary_search_selection,
)
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, ProtocolResult, raw_items


@dataclass(frozen=True)
class MedianOutcome:
    """Root-side outcome of the deterministic median protocol."""

    median: int
    n: int
    minimum: int
    maximum: int
    probes: int
    binary_search_iterations: int

    @classmethod
    def from_order_statistic(cls, outcome: OrderStatisticOutcome) -> "MedianOutcome":
        return cls(
            median=outcome.value,
            n=outcome.n,
            minimum=outcome.minimum,
            maximum=outcome.maximum,
            probes=outcome.probes,
            binary_search_iterations=outcome.binary_search_iterations,
        )


class DeterministicMedianProtocol:
    """Algorithm MEDIAN(X): exact median with O((log N)^2) bits per node."""

    def __init__(
        self, view: ItemView = raw_items, domain_max: int | None = None
    ) -> None:
        self._view = view
        self._domain_max = domain_max

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; the result's ``value`` is a :class:`MedianOutcome`."""
        result = run_binary_search_selection(
            network,
            target_rank=lambda n: n / 2.0,
            view=self._view,
            domain_max=self._domain_max,
        )
        outcome = MedianOutcome.from_order_statistic(result.value)
        return ProtocolResult(
            value=outcome,
            max_node_bits=result.max_node_bits,
            total_bits=result.total_bits,
            messages=result.messages,
            rounds=result.rounds,
        )
