"""The Set-Disjointness reduction of Theorem 5.1.

The proof of the Ω(n) lower bound maps a Two-Party Set Disjointness (2SD)
instance onto a sensor network:

* when nodes may hold many items, player A simulates the root and player B
  simulates everybody else (any topology works);
* when each node holds one item, a line of 2n nodes is split into a left half
  (player A's set) and a right half (player B's set).

Player A and B learn |X_A| and |X_B| (O(log n) bits), run any COUNT DISTINCT
protocol P on the union, and answer "disjoint" iff the count equals
|X_A| + |X_B|.  Since 2SD needs Ω(n) bits, so does P — every bit P sends
across the A/B cut is a bit of the 2SD conversation.

This module builds those adversarial instances and runs the reduction end to
end, so experiment E7 can (a) confirm the reduction decides disjointness
correctly when driven by the exact protocol, (b) measure the Ω(n) bits that
cross the cut, and (c) show that the approximate protocol — which avoids the
lower bound — gets the disjointness answer *wrong* on near-disjoint instances,
exactly the "difference of one flips the answer" phenomenon discussed at the
end of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.randomness import make_rng
from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.network.topology import line_topology


@dataclass(frozen=True)
class DisjointnessInstance:
    """A 2SD instance embedded in a line sensor network (one item per node)."""

    set_a: tuple[int, ...]
    set_b: tuple[int, ...]
    domain_max: int

    @property
    def num_nodes(self) -> int:
        return len(self.set_a) + len(self.set_b)

    @property
    def disjoint(self) -> bool:
        return not (set(self.set_a) & set(self.set_b))

    @property
    def true_distinct_count(self) -> int:
        return len(set(self.set_a) | set(self.set_b))

    def build_network(self, **network_kwargs) -> SensorNetwork:
        """Embed the instance in a line of ``2n`` nodes, A on the left, B on the right.

        The root (node 0) belongs to player A's half, so every bit the
        protocol moves between the halves crosses the single cut edge in the
        middle of the line — the communication the reduction lower-bounds.
        """
        items = list(self.set_a) + list(self.set_b)
        graph = line_topology(len(items))
        return SensorNetwork.from_items(items, topology=graph, **network_kwargs)

    def cut_edge(self) -> tuple[int, int]:
        """The line edge separating player A's nodes from player B's nodes."""
        boundary = len(self.set_a)
        return boundary - 1, boundary


def make_disjoint_instance(
    set_size: int, domain_max: int | None = None, seed: int | None = 0
) -> DisjointnessInstance:
    """Build an instance where the two sets share no element."""
    require_positive(set_size, "set_size")
    domain = domain_max if domain_max is not None else 4 * set_size
    if domain < 2 * set_size:
        raise ConfigurationError(
            "domain_max must be at least twice the set size for disjoint sets"
        )
    rng = make_rng(seed)
    universe = list(range(domain))
    rng.shuffle(universe)
    set_a = tuple(sorted(universe[:set_size]))
    set_b = tuple(sorted(universe[set_size : 2 * set_size]))
    return DisjointnessInstance(set_a=set_a, set_b=set_b, domain_max=domain)


def make_intersecting_instance(
    set_size: int,
    overlap: int = 1,
    domain_max: int | None = None,
    seed: int | None = 0,
) -> DisjointnessInstance:
    """Build an instance where the sets share exactly ``overlap`` elements.

    ``overlap=1`` is the hardest case for any protocol that only approximates
    the distinct count: a single shared value separates "disjoint" from
    "intersecting".
    """
    require_positive(set_size, "set_size")
    if not 0 < overlap <= set_size:
        raise ConfigurationError(
            f"overlap must lie in [1, {set_size}], got {overlap}"
        )
    base = make_disjoint_instance(set_size, domain_max=domain_max, seed=seed)
    rng = make_rng(None if seed is None else seed + 1)
    shared = rng.sample(list(base.set_a), overlap)
    set_b = list(base.set_b)
    replace_positions = rng.sample(range(len(set_b)), overlap)
    for position, value in zip(replace_positions, shared):
        set_b[position] = value
    return DisjointnessInstance(
        set_a=base.set_a, set_b=tuple(sorted(set_b)), domain_max=base.domain_max
    )


@dataclass(frozen=True)
class DisjointnessVerdict:
    """Outcome of the 2SD(P) reduction protocol."""

    reported_disjoint: bool
    truly_disjoint: bool
    distinct_count_reported: float
    distinct_count_true: int
    max_node_bits: int
    cut_bits: int

    @property
    def correct(self) -> bool:
        return self.reported_disjoint == self.truly_disjoint


def solve_disjointness_via_count_distinct(
    instance: DisjointnessInstance,
    count_distinct_protocol,
    tolerance: float = 0.0,
) -> DisjointnessVerdict:
    """Run the reduction of Theorem 5.1's proof.

    ``count_distinct_protocol`` is any object with ``run(network)`` returning a
    :class:`~repro.protocols.base.ProtocolResult` whose value is either the
    count itself or an object with an ``estimate`` attribute.  ``tolerance``
    allows an approximate count to still answer "disjoint" when it is within
    ``tolerance * (|A| + |B|)`` of the disjoint total — the experiment uses it
    to show that no tolerance setting gets near-disjoint instances right.
    """
    network = instance.build_network()
    result = count_distinct_protocol.run(network)
    raw_value = result.value
    count = float(getattr(raw_value, "estimate", raw_value))
    expected_if_disjoint = len(instance.set_a) + len(instance.set_b)
    reported_disjoint = abs(count - expected_if_disjoint) <= tolerance * expected_if_disjoint

    left, right = instance.cut_edge()
    cut_bits = min(
        network.ledger.node_bits(left), network.ledger.node_bits(right)
    )
    return DisjointnessVerdict(
        reported_disjoint=reported_disjoint,
        truly_disjoint=instance.disjoint,
        distinct_count_reported=count,
        distinct_count_true=instance.true_distinct_count,
        max_node_bits=result.max_node_bits,
        cut_bits=cut_bits,
    )
