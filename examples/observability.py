"""Observability: one instrumented run, every phase timed and billed.

Run with::

    python examples/observability.py

A 400-node sensor field answers standing COUNT and MEDIAN queries through a
*storm under churn*: background membership churn every epoch, a crash storm
that takes out 20% of the field at epoch 4, partial rejoins at epoch 8 — with
a charged heartbeat detector (period 2) paying for the failure knowledge and
a root election standing by.

The new part is the :class:`repro.telemetry.SpanTracer` installed on the
network: every epoch then emits one ``epoch`` span with the ``detect`` →
``election`` → ``repair`` → ``stream`` → ``convergecast`` phase spans nested
inside it, each carrying its wall-clock and its exact ledger delta (bits,
messages, worst per-node bits) metered through the existing
:class:`~repro.network.LedgerMark` machinery.  The spans reconcile exactly:
summing a phase column reproduces the corresponding
:class:`~repro.faults.FaultTrace` column, and nothing the tracer does
charges a single bit — the same run with telemetry off produces an
identical ledger (the overhead-guard test in ``tests/test_telemetry.py``
asserts both).

The trace is also written as JSONL and re-rendered through the CLI
(``scripts/telemetry_report.py``), which is how benchmark artifacts are
inspected in CI.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ContinuousQueryEngine,
    CountQuery,
    FaultEngine,
    HeartbeatDetector,
    MedianQuery,
    RootElection,
    SensorNetwork,
    SpanTracer,
    run_faulty_stream,
)
from repro.analysis.report import format_table
from repro.workloads import ChurnStream, storm_under_churn_script

NUM_NODES = 400
EPOCHS = 12
STORM_EPOCH = 4
REJOIN_EPOCH = 8
DOMAIN = 1 << 16
EPSILON = 0.1


def main() -> None:
    network = SensorNetwork.from_items(
        [0] * NUM_NODES, topology="random_geometric", seed=0, degree_bound=None
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=EPSILON)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN, compression=256))
    script = storm_under_churn_script(
        network.node_ids(),
        epochs=EPOCHS,
        storm_epoch=STORM_EPOCH,
        storm_fraction=0.2,
        rejoin_epoch=REJOIN_EPOCH,
        seed=0,
    )
    faults = FaultEngine(
        network,
        script=script,
        detector=HeartbeatDetector(period=2),
        election=RootElection(),
    )
    stream = ChurnStream(NUM_NODES, max_value=DOMAIN, seed=3)

    tracer = SpanTracer()
    trace = run_faulty_stream(
        engine, stream, faults, epochs=EPOCHS, telemetry=tracer
    )

    summary = tracer.phase_summary()
    rows = []
    for phase in sorted(summary, key=lambda name: -summary[name]["bits"]):
        row = summary[phase]
        rows.append(
            [
                phase,
                int(row["count"]),
                f"{row['wall_s']:.4f}",
                int(row["bits"]),
                int(row["exclusive_bits"]),
                int(row["max_node_bits"]),
            ]
        )
    print(format_table(
        ["phase", "count", "wall s", "bits", "excl bits", "max node bits"],
        rows,
        title=(
            f"Phase dashboard — {EPOCHS} epochs of storm-under-churn "
            f"({NUM_NODES} nodes, heartbeat period 2)"
        ),
    ))
    print()

    epoch_bits = sum(span.bits for span in tracer.spans_named("epoch"))
    print(
        "spans reconcile with the accounting: "
        f"epoch spans carry {epoch_bits} bits, "
        f"the fault trace charged {trace.total_bits} bits — "
        + ("exact match" if epoch_bits == trace.total_bits else "MISMATCH")
        + f" (the ledger's {network.ledger.total_bits} adds pre-run tree construction)"
    )
    print(
        "phase columns = trace columns: "
        f"detect {sum(s.bits for s in tracer.spans_named('detect'))}"
        f"=={trace.total_detection_bits}, "
        f"election {sum(s.bits for s in tracer.spans_named('election'))}"
        f"=={trace.total_election_bits}, "
        f"stream {sum(s.bits for s in tracer.spans_named('stream'))}"
        f"=={trace.total_query_bits}"
    )
    print()

    print("metrics dashboard (counters abridged to the resilience bill):")
    for key, bits in sorted(tracer.metrics.counter_series("ledger.bits").items()):
        labels = ", ".join(f"{k}={v}" for k, v in key)
        print(f"  ledger.bits[{labels}] = {int(bits)}")
    latency = tracer.metrics.histogram("detect.latency_epochs")
    if latency is not None:
        print(
            f"  detection latency: mean {latency.mean:.2f} epochs over "
            f"{latency.count} detecting epochs (worst {latency.maximum:.0f})"
        )
    error = tracer.metrics.histogram("answer.error", query="count")
    if error is not None:
        print(
            f"  COUNT answer error: max {error.maximum:.1f} "
            f"(budget {EPSILON * NUM_NODES:.0f})"
        )
    print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "TELEMETRY_observability.jsonl"
        lines = tracer.write_jsonl(path)
        print(
            f"wrote {lines} JSONL lines; render them any time with\n"
            f"  python scripts/telemetry_report.py {path.name}"
        )


if __name__ == "__main__":
    main()
