#!/usr/bin/env python
"""Render a telemetry JSONL trace as the phase dashboard.

Usage::

    python scripts/telemetry_report.py TELEMETRY_run.jsonl
    python scripts/telemetry_report.py TELEMETRY_run.jsonl --format prometheus

Reads the span/metrics JSONL a :class:`repro.telemetry.SpanTracer` writes
(``tracer.write_jsonl(path)``) and prints

* the **phase table** — spans aggregated by name: how often each phase ran,
  its wall-clock, its inclusive and exclusive communication bits, and the
  worst single-node bit delta inside it (the paper's per-node cost measure,
  scoped per phase);
* the **metrics dashboard** — every counter/gauge/histogram the run
  recorded, as markdown tables (or, with ``--format prometheus``, in the
  Prometheus text exposition format for scraping/diffing).

Exit status is non-zero when the file contains no span lines, so CI smoke
runs fail loudly on an empty or mangled trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.report import format_table  # noqa: E402
from repro.telemetry import MetricsRegistry, read_jsonl  # noqa: E402


def summarize_spans(spans: list[dict]) -> list[list]:
    """Aggregate span dicts by name into the phase-table rows."""
    summary: dict[str, dict] = {}
    for span in spans:
        row = summary.setdefault(
            span["name"],
            {
                "count": 0,
                "wall_s": 0.0,
                "bits": 0,
                "exclusive_bits": 0,
                "messages": 0,
                "max_node_bits": 0,
                "failed": 0,
            },
        )
        row["count"] += 1
        row["wall_s"] += span.get("wall_s", 0.0)
        row["bits"] += span.get("bits", 0)
        row["exclusive_bits"] += span.get("exclusive_bits", 0)
        row["messages"] += span.get("messages", 0)
        row["max_node_bits"] = max(
            row["max_node_bits"], span.get("max_node_bits", 0)
        )
        row["failed"] += 1 if span.get("failed") else 0
    rows = []
    for name in sorted(summary, key=lambda n: -summary[n]["bits"]):
        row = summary[name]
        rows.append(
            [
                name,
                row["count"],
                f"{row['wall_s']:.4f}",
                row["bits"],
                row["exclusive_bits"],
                row["messages"],
                row["max_node_bits"],
                row["failed"] or "",
            ]
        )
    return rows


def rebuild_registry(metrics_dump: dict) -> MetricsRegistry:
    """Re-hydrate a :class:`MetricsRegistry` from its ``to_dict()`` dump.

    Counters and gauges restore exactly.  Histogram *distributions* cannot
    be replayed from bucket counts, so each series is restored as its
    summary statistics: the count, sum, min and max survive (which is what
    the dashboards render); bucket detail is approximated by re-observing
    the recorded extremes and mean.
    """
    registry = MetricsRegistry()
    for name, series in metrics_dump.get("counters", {}).items():
        for entry in series:
            registry.count(name, entry["value"], **entry.get("labels", {}))
    for name, series in metrics_dump.get("gauges", {}).items():
        for entry in series:
            registry.gauge(name, entry["value"], **entry.get("labels", {}))
    for name, series in metrics_dump.get("histograms", {}).items():
        for entry in series:
            labels = entry.get("labels", {})
            count = entry.get("count", 0)
            if count <= 0:
                continue
            total = entry.get("sum", 0.0)
            minimum = entry.get("min")
            maximum = entry.get("max")
            observations = []
            if minimum is not None:
                observations.append(minimum)
            if maximum is not None and count > 1:
                observations.append(maximum)
            while len(observations) < count:
                remaining = count - len(observations)
                observations.append(
                    (total - sum(observations)) / remaining
                )
            for value in observations:
                registry.observe(name, value, **labels)
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a SpanTracer JSONL trace as the phase dashboard."
    )
    parser.add_argument("trace", help="path to the telemetry JSONL file")
    parser.add_argument(
        "--format",
        choices=("markdown", "prometheus"),
        default="markdown",
        help="metrics output format (default: markdown)",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="print the phase table only",
    )
    args = parser.parse_args(argv)

    path = Path(args.trace)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    spans: list[dict] = []
    metrics_dump: dict | None = None
    lines = 0
    try:
        for line in read_jsonl(path):
            lines += 1
            kind = line.get("type")
            if kind == "span":
                spans.append(line)
            elif kind == "metrics":
                metrics_dump = line.get("metrics")
    except json.JSONDecodeError as error:
        print(
            f"error: {path} is not valid JSONL (truncated write?): "
            f"line {error.lineno}: {error.msg}",
            file=sys.stderr,
        )
        return 2
    if lines == 0:
        print(f"error: {path} is empty — no trace was written", file=sys.stderr)
        return 2
    if not spans:
        print(f"error: {path} contains no span lines", file=sys.stderr)
        return 1

    total_wall = sum(span.get("wall_s", 0.0) for span in spans if span.get("depth") == 0)
    total_bits = sum(
        span.get("exclusive_bits", 0) for span in spans
    )
    print(
        format_table(
            [
                "phase",
                "count",
                "wall s",
                "bits",
                "excl bits",
                "messages",
                "max node",
                "failed",
            ],
            summarize_spans(spans),
            title=(
                f"Phase dashboard — {len(spans)} spans, "
                f"{total_wall:.4f}s top-level wall-clock, "
                f"{total_bits} bits charged"
            ),
        )
    )
    if metrics_dump is not None and not args.no_metrics:
        registry = rebuild_registry(metrics_dump)
        print()
        if args.format == "prometheus":
            print(registry.render_prometheus(), end="")
        else:
            print(registry.render_markdown(), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
