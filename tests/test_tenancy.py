"""Multi-tenant tenancy layer: planner, ledger split, and equivalence.

The tenancy layer's contract has two halves, and this suite checks both
the deterministic mechanics and the randomized end-to-end behaviour:

* **answers**: dedup changes *who pays*, never *what is answered* — every
  tenant's per-epoch answer must be number-identical to a dedicated
  single-tenant engine's (reliable radios), and the whole shared plan
  must be a bit-for-bit twin of a full-plan reference engine under lossy
  and duplicating radios with faults in flight;
* **billing**: the per-tenant ledger columns must sum *exactly* to the
  shared plan's charged bits after every epoch, under every topology,
  radio, query mix and fault script the randomized cases draw.

Large randomized cases carry the ``slow`` marker (tier-1 CI deselects
them on the oldest interpreter).
"""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import FaultEngine, run_faulty_stream
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import (
    REGISTRATION_BITS,
    CountQuery,
    DistinctCountQuery,
    MedianQuery,
    PredicateCountQuery,
    QuantileQuery,
)
from repro.tenancy import (
    MultiTenantEngine,
    QueryPlanner,
    TenantLedgerSplit,
    degrade_target,
    plan_signature,
)
from repro.workloads.faults import crash_storm_script, link_storm_script
from repro.workloads.streams import DriftStream, make_stream

DOMAIN = 1 << 10
RADIOS = {
    "reliable": lambda seed: ReliableRadio(),
    "lossy": lambda seed: LossyRadio(loss_rate=0.25, seed=seed),
    "duplicating": lambda seed: DuplicatingRadio(duplicate_rate=0.3, seed=seed),
}


def build_network(topology, seed, num_nodes, radio=None, execution="batched"):
    network = SensorNetwork.from_items(
        [0] * num_nodes,
        topology=topology,
        seed=seed,
        radio=radio if radio is not None else ReliableRadio(),
        execution=execution,
    )
    network.clear_items()
    return network


def build_mix(rng, num_tenants):
    """A seeded random tenant mix over the five standing-query families.

    Distinct tenants draw overlapping queries (same family, independently
    constructed instances) so the planner's signature dedup is exercised
    on every case; quantile tenants vary only the queried fraction, which
    must share a q-digest leg.
    """
    mix = []
    for index in range(num_tenants):
        family = rng.choice(["count", "countp", "median", "quantile", "distinct"])
        if family == "count":
            query = CountQuery()
        elif family == "countp":
            query = PredicateCountQuery(lambda v: v < DOMAIN // 2, "below_mid")
        elif family == "median":
            query = MedianQuery(universe_size=DOMAIN + 1, compression=64)
        elif family == "quantile":
            query = QuantileQuery(
                rng.choice([0.25, 0.5, 0.75]),
                universe_size=DOMAIN + 1,
                compression=64,
            )
        else:
            query = DistinctCountQuery(num_registers=32, salt=7)
        mix.append((f"t{index:02d}", f"q_{family}", query))
    return mix


# --------------------------------------------------------------------------- #
# QueryPlanner: signatures, sharing, admission tiers
# --------------------------------------------------------------------------- #
class TestQueryPlanner:
    def test_same_signature_shares_one_leg(self):
        planner = QueryPlanner(num_nodes=25)
        first = planner.admit("acme", "total", CountQuery())
        second = planner.admit("globex", "fleet", CountQuery())
        assert first.status == "admitted"
        assert second.status == "shared"
        assert second.leg == first.leg
        assert len(planner.legs()) == 1
        assert sorted(planner.subscriptions()[first.leg]) == [
            ("acme", "total"),
            ("globex", "fleet"),
        ]

    def test_quantile_fraction_is_excluded_from_the_signature(self):
        planner = QueryPlanner(num_nodes=25)
        median = planner.admit(
            "acme", "median", MedianQuery(universe_size=DOMAIN + 1, compression=64)
        )
        quartile = planner.admit(
            "globex",
            "p25",
            QuantileQuery(0.25, universe_size=DOMAIN + 1, compression=64),
        )
        assert quartile.status == "shared"
        assert quartile.leg == median.leg

    def test_different_parameters_get_their_own_legs(self):
        planner = QueryPlanner(num_nodes=25)
        planner.admit("a", "m64", MedianQuery(universe_size=DOMAIN + 1, compression=64))
        wider = planner.admit(
            "b", "m128", MedianQuery(universe_size=DOMAIN + 1, compression=128)
        )
        assert wider.status == "admitted"
        assert len(planner.legs()) == 2

    def test_predicate_signature_uses_the_description(self):
        assert plan_signature(
            PredicateCountQuery(lambda v: v < 5, "below_five")
        ) == plan_signature(PredicateCountQuery(lambda v: v <= 4, "below_five"))
        assert plan_signature(
            PredicateCountQuery(lambda v: v < 5, "below_five")
        ) != plan_signature(PredicateCountQuery(lambda v: v < 6, "below_six"))

    def test_standard_tenant_is_rejected_when_budget_is_exhausted(self):
        planner = QueryPlanner(num_nodes=25, bits_budget=1)
        decision = planner.admit("acme", "total", CountQuery())
        assert decision.status == "rejected"
        assert not decision.admitted
        assert planner.legs() == {}

    def test_gold_tenant_is_admitted_over_budget(self):
        planner = QueryPlanner(num_nodes=25, bits_budget=1)
        decision = planner.admit("acme", "total", CountQuery(), tier="gold")
        assert decision.status == "admitted"
        assert decision.over_budget
        assert len(planner.legs()) == 1

    def test_best_effort_degrades_onto_a_compatible_leg(self):
        planner = QueryPlanner(num_nodes=25, bits_budget=10_000)
        fine = planner.admit(
            "acme", "m256", MedianQuery(universe_size=DOMAIN + 1, compression=256),
            tier="gold",
        )
        coarse = planner.admit(
            "globex",
            "m32",
            MedianQuery(universe_size=DOMAIN + 1, compression=32),
            tier="best_effort",
        )
        if coarse.status == "degraded":
            assert coarse.leg == fine.leg
        else:
            # Budget still had room: degradation must not have triggered.
            assert coarse.status == "admitted"

    def test_count_tenants_never_degrade(self):
        planner = QueryPlanner(num_nodes=1_000_000, bits_budget=100)
        planner.admit("acme", "below", PredicateCountQuery(lambda v: v < 5, "lo"),
                      tier="gold")
        decision = planner.admit(
            "globex", "above", PredicateCountQuery(lambda v: v >= 5, "hi"),
            tier="best_effort",
        )
        assert decision.status == "rejected"

    def test_exact_share_is_free_even_when_budget_is_exhausted(self):
        planner = QueryPlanner(num_nodes=1_000_000, bits_budget=100)
        first = planner.admit("acme", "total", CountQuery(), tier="gold")
        shared = planner.admit("globex", "fleet", CountQuery())
        assert shared.status == "shared"
        assert shared.leg == first.leg

    def test_degrade_target_prefers_same_universe_qdigest(self):
        planner = QueryPlanner(num_nodes=25)
        planner.admit("a", "c", CountQuery())
        target = planner.admit(
            "a", "m", MedianQuery(universe_size=DOMAIN + 1, compression=64)
        )
        signature = plan_signature(
            QuantileQuery(0.9, universe_size=DOMAIN + 1, compression=16)
        )
        assert degrade_target(signature, planner.legs()) == target.leg
        count_signature = plan_signature(CountQuery())
        assert degrade_target(count_signature, planner.legs()) is None


# --------------------------------------------------------------------------- #
# TenantLedgerSplit: the exact-decomposition arithmetic
# --------------------------------------------------------------------------- #
class TestTenantLedgerSplit:
    def test_remainder_bits_go_to_the_first_sorted_units(self):
        split = TenantLedgerSplit()
        shares = split.split_epoch(
            {"leg00": 10},
            {"leg00": [("c", "q"), ("a", "q"), ("b", "q")]},
        )
        # 10 over 3 units: 4 for 'a' (first in sorted order), 3 each after.
        assert shares == {"a": 4, "b": 3, "c": 3}
        assert split.total_bits == 10
        assert split.decomposition_holds()

    def test_zero_bit_epochs_bill_nobody(self):
        split = TenantLedgerSplit()
        assert split.split_epoch({"leg00": 0}, {"leg00": [("a", "q")]}) == {}
        assert split.total_bits == 0

    def test_charging_a_leg_with_no_subscribers_fails_loudly(self):
        split = TenantLedgerSplit()
        with pytest.raises(ConfigurationError, match="no subscribers"):
            split.split_epoch({"leg00": 8}, {})

    def test_negative_bits_are_rejected(self):
        split = TenantLedgerSplit()
        with pytest.raises(ConfigurationError):
            split.split_epoch({"leg00": -1}, {"leg00": [("a", "q")]})
        with pytest.raises(ConfigurationError):
            split.charge_direct("a", "leg00", -1)

    def test_randomized_splits_always_decompose_exactly(self):
        rng = random.Random(1234)
        split = TenantLedgerSplit()
        recorded = 0
        for _ in range(200):
            legs = {
                f"leg{i:02d}": rng.randrange(0, 5000)
                for i in range(rng.randrange(1, 5))
            }
            subscriptions = {
                leg: [
                    (f"t{rng.randrange(8):02d}", f"q{j}")
                    for j in range(rng.randrange(1, 6))
                ]
                for leg in legs
            }
            split.split_epoch(legs, subscriptions)
            recorded += sum(legs.values())
            assert split.total_bits == recorded
            assert split.decomposition_holds()
        assert sum(split.columns().values()) == recorded

    def test_leg_breakdown_tracks_per_leg_columns(self):
        split = TenantLedgerSplit()
        split.charge_direct("acme", "leg00", 16)
        split.split_epoch({"leg00": 7}, {"leg00": [("acme", "q"), ("globex", "q")]})
        assert split.leg_breakdown("acme") == {"leg00": 16 + 4}
        assert split.leg_breakdown("globex") == {"leg00": 3}
        assert split.column("nobody") == 0


# --------------------------------------------------------------------------- #
# MultiTenantEngine: registration guards and answer derivation
# --------------------------------------------------------------------------- #
class TestMultiTenantEngine:
    def test_duplicate_tenant_query_name_is_rejected(self):
        service = MultiTenantEngine(build_network("grid", 0, 9))
        service.register("acme", "total", CountQuery())
        with pytest.raises(ConfigurationError, match="already registered"):
            service.register("acme", "total", CountQuery())

    def test_empty_tenant_name_is_rejected(self):
        service = MultiTenantEngine(build_network("grid", 0, 9))
        with pytest.raises(ConfigurationError):
            service.register("", "total", CountQuery())

    def test_advancing_with_no_admitted_queries_fails_loudly(self):
        service = MultiTenantEngine(build_network("grid", 0, 9))
        with pytest.raises(ConfigurationError, match="register"):
            service.advance_epoch({})

    def test_rejected_tenant_gets_no_answers(self):
        service = MultiTenantEngine(build_network("grid", 0, 9), bits_budget=1)
        service.register("acme", "gold_total", CountQuery(), tier="gold")
        rejected = service.register("globex", "total", MedianQuery(
            universe_size=DOMAIN + 1, compression=64
        ))
        assert rejected.status == "rejected"
        service.advance_epoch({0: [5], 1: [9]})
        assert service.tenant_answers("globex") == {}
        assert "acme" in service.answers()
        assert service.tenants() == ["acme"]

    def test_quantile_tenants_share_a_leg_but_answer_differently(self):
        network = build_network("grid", 3, 25)
        service = MultiTenantEngine(network, epsilon=0.0)
        service.register("acme", "median", MedianQuery(
            universe_size=DOMAIN + 1, compression=256
        ))
        service.register(
            "globex",
            "p25",
            QuantileQuery(0.25, universe_size=DOMAIN + 1, compression=256),
        )
        assert len(service.planner.legs()) == 1
        rng = random.Random(42)
        service.advance_epoch(
            {nid: [rng.randrange(DOMAIN)] for nid in network.node_ids()}
        )
        median = service.tenant_answers("acme")["median"]
        quartile = service.tenant_answers("globex")["p25"]
        assert quartile <= median

    def test_answers_survive_quiet_epochs(self):
        service = MultiTenantEngine(build_network("grid", 0, 9), epsilon=0.1)
        service.register("acme", "total", CountQuery())
        service.advance_epoch({0: [5]})
        first = service.tenant_answers("acme")["total"]
        service.advance_epoch({})
        assert service.tenant_answers("acme")["total"] == first

    def test_telemetry_counts_admissions_and_split_bits(self):
        from repro.telemetry import SpanTracer

        network = build_network("grid", 0, 16)
        network.telemetry = SpanTracer()
        service = MultiTenantEngine(network)
        service.register("acme", "total", CountQuery())
        service.register("globex", "fleet", CountQuery())
        service.advance_epoch({0: [5], 1: [7]})
        metrics = network.telemetry.metrics
        assert metrics.counter_value(
            "tenant.admissions", status="admitted", tier="standard"
        ) == 1
        assert metrics.counter_value(
            "tenant.admissions", status="shared", tier="standard"
        ) == 1
        assert metrics.gauge_value("tenant.legs") == 1
        assert metrics.gauge_value("tenant.queries") == 2
        # tenant.bits meters the epoch shares; the registration broadcast is
        # billed via charge_direct to the leg owner, outside the counter.
        registration_bits = service.split.total_bits - sum(
            metrics.counter_value("tenant.bits", tenant=tenant)
            for tenant in ("acme", "globex")
        )
        assert registration_bits == REGISTRATION_BITS * (network.num_nodes - 1)
        split_spans = network.telemetry.spans_named("tenant.split")
        assert len(split_spans) == 1
        assert split_spans[0].attributes["legs"] == 1
        assert split_spans[0].attributes["tenants"] == 2


# --------------------------------------------------------------------------- #
# Randomized equivalence: shared plan vs dedicated engines (reliable radio)
# --------------------------------------------------------------------------- #
def run_equivalence_case(topology, seed, num_nodes, num_tenants, epochs):
    """One randomized case: shared service vs one dedicated engine per tenant.

    Asserts per epoch that every tenant's answer is number-identical to its
    dedicated engine's and that the tenant columns sum exactly to the shared
    network's total charged bits.
    """
    rng = random.Random(seed * 9176 + 5)
    mix = build_mix(rng, num_tenants)

    shared_net = build_network(topology, seed, num_nodes)
    service = MultiTenantEngine(shared_net, epsilon=0.1)
    for tenant, name, query in mix:
        decision = service.register(tenant, name, query)
        assert decision.admitted
    # Five query families at most: overlap is guaranteed, dedup must bite.
    assert len(service.planner.legs()) < num_tenants

    dedicated = {}
    streams = {}
    for tenant, name, query in mix:
        network = build_network(topology, seed, num_nodes)
        engine = ContinuousQueryEngine(network, epsilon=0.1)
        engine.register(name, query)
        dedicated[tenant] = (name, engine)
        streams[tenant] = make_stream(
            "drift", num_nodes, max_value=DOMAIN, seed=seed
        )

    shared_stream = make_stream("drift", num_nodes, max_value=DOMAIN, seed=seed)
    for epoch in range(epochs):
        updates = (
            shared_stream.initial() if epoch == 0 else shared_stream.step(epoch)
        )
        service.advance_epoch(updates)
        # Billing: exact decomposition against the engine's plan keys and
        # against everything the shared network charged at all.
        assert service.decomposition_holds()
        assert service.split.total_bits == shared_net.ledger.total_bits
        for tenant, (name, engine) in dedicated.items():
            stream = streams[tenant]
            own = stream.initial() if epoch == 0 else stream.step(epoch)
            engine.advance_epoch(own)
            assert engine.answers().get(name) == service.tenant_answers(
                tenant
            ).get(name), f"tenant {tenant} ({name}) diverged at epoch {epoch}"


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("topology", ["grid", "random_geometric", "random_tree"])
def test_tenant_answers_match_dedicated_engines(topology, seed):
    # Seed off stable inputs only (str.__hash__ is randomized per process).
    rng = random.Random(seed * 6151 + len(topology) * 17)
    run_equivalence_case(
        topology,
        seed,
        num_nodes=rng.choice([25, 36, 49]),
        num_tenants=6 + rng.randrange(5),
        epochs=6,
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1])
def test_tenant_answers_match_dedicated_engines_at_scale(seed):
    run_equivalence_case(
        "random_geometric", seed, num_nodes=400, num_tenants=16, epochs=8
    )


# --------------------------------------------------------------------------- #
# Randomized equivalence: lossy radios and faults vs a full-plan twin
# --------------------------------------------------------------------------- #
def run_twin_case(radio_name, seed, with_faults, epochs=6, num_nodes=36):
    """Shared service vs a reference engine running the identical plan.

    Under lossy / duplicating radios the shared network's RNG interleaves
    across legs, so per-tenant dedicated engines are not bit-comparable;
    the contract instead is that the whole service is a *twin* of one
    plain engine running the same legs in the same order on an identically
    seeded network — same answers, same ledger, same radio state — while
    the tenant columns keep decomposing the shared bits exactly.
    """
    rng = random.Random(seed * 7321 + 11)
    topology = rng.choice(["grid", "random_geometric"])
    mix = build_mix(rng, 8)

    arms = []
    legs = None
    for arm in ("shared", "reference"):
        network = build_network(
            topology, seed, num_nodes, radio=RADIOS[radio_name](seed)
        )
        if arm == "shared":
            engine = MultiTenantEngine(network, epsilon=0.1)
            for tenant, name, query in mix:
                engine.register(tenant, name, query)
            legs = [
                (leg_name, leg.query)
                for leg_name, leg in engine.planner.legs().items()
            ]
        else:
            engine = ContinuousQueryEngine(network, epsilon=0.1)
            for leg_name, query in legs:
                engine.register(leg_name, query)
        if with_faults:
            script = crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.2, seed=seed,
                rejoin_epoch=3, rejoin_value_max=DOMAIN,
            ).merge(
                link_storm_script(
                    network.graph, epoch=1, fraction=0.1, seed=seed,
                    restore_epoch=3,
                )
            )
        else:
            script = None
        faults = FaultEngine(network, script=script) if script else None
        if faults is not None:
            trace = run_faulty_stream(
                engine,
                DriftStream(num_nodes, max_value=DOMAIN, seed=seed),
                faults,
                epochs=epochs,
            )
        else:
            stream = DriftStream(num_nodes, max_value=DOMAIN, seed=seed)
            records = []
            for epoch in range(epochs):
                updates = stream.initial() if epoch == 0 else stream.step(epoch)
                records.append(engine.advance_epoch(updates))
            trace = records
        arms.append((network, engine, trace))

    (shared_net, service, shared_trace) = arms[0]
    (reference_net, reference, reference_trace) = arms[1]
    # The plan runs identically: per-leg answers and costs, bit for bit.
    assert [r.answers for r in shared_trace] == [
        r.answers for r in reference_trace
    ]
    # Faulted runs yield FaultEpochRecords (total_bits), plain runs
    # EpochRecords (bits) — either way, identical epoch by epoch.
    def epoch_bits(record):
        bits = getattr(record, "total_bits", None)
        return record.bits if bits is None else bits

    assert [epoch_bits(r) for r in shared_trace] == [
        epoch_bits(r) for r in reference_trace
    ]
    left, right = shared_net.ledger.snapshot(), reference_net.ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.per_protocol_bits == right.per_protocol_bits
    if radio_name != "reliable":  # ReliableRadio draws no randomness
        assert (
            shared_net.radio._rng.getstate()
            == reference_net.radio._rng.getstate()
        )
    # Billing still decomposes exactly — faults, retries and all.
    assert service.decomposition_holds()
    # Per-tenant answers are the reference's summaries through each
    # tenant's own query.
    subscriptions = service.planner.subscriptions()
    for tenant, name, query in mix:
        leg = next(
            leg_name
            for leg_name, units in subscriptions.items()
            if (tenant, name) in units
        )
        summary = reference.root_summary(leg)
        expected = None if summary is None else query.answer(summary)
        assert service.tenant_answers(tenant).get(name) == expected


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("radio_name", ["lossy", "duplicating"])
def test_shared_plan_is_twin_of_reference_engine(radio_name, seed):
    run_twin_case(radio_name, seed, with_faults=False)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
def test_shared_plan_is_twin_of_reference_engine_under_faults(radio_name, seed):
    run_twin_case(radio_name, seed, with_faults=True)


@pytest.mark.slow
@pytest.mark.parametrize("radio_name", ["lossy"])
def test_shared_plan_twin_under_faults_at_scale(radio_name):
    run_twin_case(radio_name, seed=4, with_faults=True, epochs=8, num_nodes=100)


# --------------------------------------------------------------------------- #
# FlightRecorder under a multi-tenant burst: drop-and-count at capacity
# --------------------------------------------------------------------------- #
class TestFlightRecorderUnderBurst:
    def test_ring_drops_count_and_chains_survive_truncation(self):
        """A tiny ring under a faulted multi-tenant run overflows honestly.

        The ring must stay at capacity, count every eviction, keep event
        ids monotonic across drops, and leave the retained causal chains
        unambiguous: a ``cause_event_id`` either resolves inside the ring
        or is provably older than everything retained — never dangling
        into the future or duplicated.
        """
        from repro.telemetry import FlightRecorder, SpanTracer

        capacity = 24
        recorder = FlightRecorder(capacity=capacity)
        network = build_network("grid", 5, 36)
        network.telemetry = SpanTracer(flight=recorder)
        service = MultiTenantEngine(network, epsilon=0.1)
        for tenant, name, query in build_mix(random.Random(99), 8):
            service.register(tenant, name, query)
        script = crash_storm_script(
            network.node_ids(), epoch=1, fraction=0.25, seed=5,
            rejoin_epoch=3, rejoin_value_max=DOMAIN,
        )
        faults = FaultEngine(network, script=script)
        run_faulty_stream(
            service,
            DriftStream(36, max_value=DOMAIN, seed=5),
            faults,
            epochs=6,
        )

        assert recorder.dropped > 0
        assert len(recorder.events) == capacity
        ids = [event.event_id for event in recorder.events]
        assert ids == sorted(ids)
        assert len(set(ids)) == capacity
        # Monotonic ids across drops: total ever recorded = retained + dropped.
        assert max(ids) == capacity + recorder.dropped
        oldest_retained = min(ids)
        retained = set(ids)
        chained = 0
        for event in recorder.events:
            cause = event.cause_event_id
            if cause is None:
                continue
            assert cause < event.event_id
            # Either resolvable in the ring or strictly older than the
            # ring's oldest survivor (evicted, but still unambiguous).
            assert cause in retained or cause < oldest_retained
            if cause in retained:
                chained += 1
        # Truncation must not sever every chain: the storm's injections and
        # their downstream repairs land close enough together that some
        # retained events still resolve their cause in-ring.
        assert chained > 0
