"""Per-epoch measurement records for runs under fault injection.

A :class:`FaultTrace` is the resilience counterpart of
:class:`~repro.streaming.StreamingTrace`: one record per epoch splitting the
traffic into *repair* control bits (adoption handshakes, pointer flips, or
the rebuild flood), *query* bits (the streaming engine's summary
re-synchronisation), *detection* bits (the heartbeat sweeps of a
:class:`~repro.faults.HeartbeatDetector`, when one is charged) and
*election* bits (a :class:`~repro.faults.RootElection`'s fail-over traffic
after a root crash), alongside
the fault events applied, the detection latency actually observed, the
surviving population, and the answer error against the attached ground
truth.  The fault benchmarks consume traces to show that incremental repair
plus delta re-sync beats rebuild-and-recompute — and what the knowledge
that repair acts on costs by itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Iterator

from repro.telemetry.records import EpochRecordBase, TraceSerialization


@dataclass(frozen=True)
class FaultEpochRecord(EpochRecordBase):
    """Everything measured during one epoch of a faulty run.

    Inherits the shared measurement fields and the ``to_dict()`` /
    ``to_jsonl()`` serializers from
    :class:`~repro.telemetry.EpochRecordBase`.
    """

    record_type: ClassVar[str] = "fault_epoch"

    crashes: int = 0
    rejoins: int = 0
    link_drops: int = 0
    link_restores: int = 0
    reparented: int = 0
    rebuilt: bool = False
    detached: int = 0
    alive: int = 0
    attached: int = 0
    repair_bits: int = 0
    repair_messages: int = 0
    query_bits: int = 0
    total_bits: int = 0
    answers: dict[str, Any] = field(default_factory=dict)
    truths: dict[str, float] = field(default_factory=dict)
    errors: dict[str, float] = field(default_factory=dict)
    #: Heartbeat traffic charged this epoch — the standing price of failure
    #: detection, accounted separately from repair and query bits.
    detection_bits: int = 0
    #: Crashes whose heartbeat silence was noticed this epoch.
    detected: int = 0
    #: Mean epochs from crash to detection, over this epoch's detections.
    detection_latency: float = 0.0
    #: Root fail-over traffic charged this epoch (candidate convergecast,
    #: winner flood and re-rooting flips), separate from the repair bits;
    #: every record satisfies ``total_bits == repair_bits + query_bits +
    #: detection_bits + election_bits``.
    election_bits: int = 0
    #: The root elected this epoch (``None`` when the root survived).
    new_root: int | None = None

    @property
    def had_faults(self) -> bool:
        """Whether any fault event or repair activity happened this epoch."""
        return (
            self.crashes + self.rejoins + self.link_drops + self.link_restores > 0
            or self.rebuilt
            or self.reparented > 0
            or self.detected > 0
            or self.new_root is not None
        )


@dataclass
class FaultTrace(TraceSerialization):
    """The epoch-by-epoch history of one run under fault injection."""

    records: list[FaultEpochRecord] = field(default_factory=list)

    def append(self, record: FaultEpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[FaultEpochRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> FaultEpochRecord:
        return self.records[index]

    @property
    def total_bits(self) -> int:
        return sum(record.total_bits for record in self.records)

    @property
    def total_repair_bits(self) -> int:
        return sum(record.repair_bits for record in self.records)

    @property
    def total_query_bits(self) -> int:
        return sum(record.query_bits for record in self.records)

    @property
    def total_detection_bits(self) -> int:
        """Heartbeat traffic across the run — what knowing about failures cost."""
        return sum(record.detection_bits for record in self.records)

    @property
    def total_detected(self) -> int:
        return sum(record.detected for record in self.records)

    @property
    def total_election_bits(self) -> int:
        """Root fail-over traffic across the run — what handovers cost."""
        return sum(record.election_bits for record in self.records)

    @property
    def election_count(self) -> int:
        """How many epochs performed a root fail-over."""
        return sum(1 for record in self.records if record.new_root is not None)

    @property
    def mean_detection_latency(self) -> float:
        """Mean epochs from crash to detection, over every detected crash."""
        detected = self.total_detected
        if detected == 0:
            return 0.0
        weighted = sum(
            record.detection_latency * record.detected for record in self.records
        )
        return weighted / detected

    @property
    def total_energy_nj(self) -> float:
        return sum(record.energy_nj for record in self.records)

    @property
    def total_crashes(self) -> int:
        return sum(record.crashes for record in self.records)

    @property
    def total_rejoins(self) -> int:
        return sum(record.rejoins for record in self.records)

    @property
    def rebuild_count(self) -> int:
        return sum(1 for record in self.records if record.rebuilt)

    def fault_epochs(self) -> list[int]:
        """Epochs in which faults were applied or the tree was patched."""
        return [record.epoch for record in self.records if record.had_faults]

    @property
    def fault_epoch_bits(self) -> int:
        """Total bits (repair + queries) charged during fault epochs.

        This is the cost *attributable to surviving the faults*: outside
        fault epochs the incremental and naive policies behave identically,
        so the benchmarks compare exactly this figure.
        """
        return sum(
            record.total_bits for record in self.records if record.had_faults
        )

    def max_answer_error(self, name: str) -> float:
        """Largest per-epoch absolute error recorded for query ``name``."""
        return max(
            (record.errors[name] for record in self.records if name in record.errors),
            default=0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FaultTrace(epochs={len(self.records)}, "
            f"repair_bits={self.total_repair_bits}, "
            f"query_bits={self.total_query_bits}, "
            f"rebuilds={self.rebuild_count})"
        )
