"""Tests for the α-counting protocol (Fact 2.2) and push-sum gossip."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.radio import DuplicatingRadio
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology, single_hop_topology
from repro.protocols.aggregates import CountProtocol
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.gossip import PushSumGossip
from repro.protocols.predicates import LessThanPredicate
from repro.workloads.generators import uniform_values


def _grid_network(n_side, max_value=10_000, seed=0):
    n = n_side * n_side
    items = uniform_values(n, max_value=max_value, seed=seed)
    return SensorNetwork.from_items(items, topology=grid_topology(n_side)), items


class TestApproxCountConfiguration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproxCountProtocol(mode="bogus")

    def test_unknown_sketch_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproxCountProtocol(sketch="bogus")

    def test_relative_sigma_reflects_registers(self):
        assert (
            ApproxCountProtocol(num_registers=256).relative_sigma
            < ApproxCountProtocol(num_registers=16).relative_sigma
        )


class TestApproxCountAccuracy:
    def test_estimate_within_three_sigma_typically(self):
        network, items = _grid_network(12, seed=1)
        protocol = ApproxCountProtocol(num_registers=256, seed=3)
        estimates = [protocol.run(network).value.estimate for _ in range(5)]
        mean_estimate = sum(estimates) / len(estimates)
        sigma = protocol.relative_sigma
        assert abs(mean_estimate - len(items)) / len(items) < 3 * sigma

    def test_independent_invocations_differ(self):
        network, _ = _grid_network(8, seed=2)
        protocol = ApproxCountProtocol(num_registers=64, seed=5)
        estimates = {round(protocol.run(network).value.estimate, 3) for _ in range(6)}
        assert len(estimates) > 1

    def test_predicate_restricted_count(self):
        network, items = _grid_network(10, seed=3)
        threshold = sorted(items)[len(items) // 4]
        protocol = ApproxCountProtocol(num_registers=256, seed=7)
        estimate = protocol.run(
            network, predicate=LessThanPredicate(threshold=threshold)
        ).value.estimate
        true_count = sum(1 for item in items if item < threshold)
        assert abs(estimate - true_count) / max(1, true_count) < 0.6

    def test_distinct_mode_collapses_duplicates(self):
        items = [7] * 80 + list(range(100, 120))
        network = SensorNetwork.from_items(items, topology=grid_topology(10))
        protocol = ApproxCountProtocol(num_registers=256, mode="distinct", seed=9)
        estimate = protocol.run(network).value.estimate
        assert estimate < 60  # true distinct count is 21, multiset count is 100

    def test_hyperloglog_variant_works(self):
        network, items = _grid_network(10, seed=4)
        protocol = ApproxCountProtocol(num_registers=256, sketch="hyperloglog", seed=11)
        estimate = protocol.run(network).value.estimate
        assert abs(estimate - len(items)) / len(items) < 0.5

    def test_view_override(self):
        network, _ = _grid_network(6, seed=5)
        protocol = ApproxCountProtocol(num_registers=256, seed=13)
        estimate = protocol.run(network, view=lambda node: []).value.estimate
        assert estimate == 0.0


class TestApproxCountComplexity:
    """Fact 2.2: cost is O(m log log N) — crucially, *flat* in N for fixed m."""

    def test_per_node_bits_flat_in_n(self):
        costs = []
        for side in (6, 12, 18):
            network, _ = _grid_network(side, seed=6)
            protocol = ApproxCountProtocol(num_registers=32, seed=1)
            costs.append(protocol.run(network).max_node_bits)
        assert max(costs) <= 1.2 * min(costs)

    def test_per_node_bits_linear_in_registers(self):
        network, _ = _grid_network(8, seed=7)
        small = ApproxCountProtocol(num_registers=16, seed=1).run(network).max_node_bits
        network.reset_ledger()
        large = ApproxCountProtocol(num_registers=256, seed=1).run(network).max_node_bits
        assert 8 <= large / small <= 24

    def test_cheaper_than_exact_count_payload_for_large_registers(self):
        # Not a paper claim per se, but the sketch bits should match
        # serialized_bits of the sketch and be charged uniformly per edge.
        from repro.sketches.loglog import LogLogSketch

        network, _ = _grid_network(6, seed=8)
        result = ApproxCountProtocol(num_registers=16, seed=1).run(network)
        assert result.value.sketch_bits == LogLogSketch(num_registers=16).serialized_bits(1 << 30)
        assert result.value.sketch_bits <= 16 * 8


class TestDuplicateInsensitivity:
    def test_distinct_mode_immune_to_duplicating_radio(self):
        items = list(range(100))
        reliable = SensorNetwork.from_items(items, topology=grid_topology(10))
        duplicating = SensorNetwork.from_items(
            items,
            topology=grid_topology(10),
            radio=DuplicatingRadio(duplicate_rate=0.5, seed=3),
        )
        protocol_a = ApproxCountProtocol(num_registers=128, mode="distinct", seed=21)
        protocol_b = ApproxCountProtocol(num_registers=128, mode="distinct", seed=21)
        estimate_reliable = protocol_a.run(reliable).value.estimate
        estimate_duplicating = protocol_b.run(duplicating).value.estimate
        assert estimate_reliable == pytest.approx(estimate_duplicating)

    def test_exact_count_unaffected_because_tree_retransmits_identical_partials(self):
        # The duplicating radio re-delivers the same partial aggregate; the
        # tree protocol's result is unchanged but its cost goes up.
        items = list(range(50))
        network = SensorNetwork.from_items(
            items,
            topology=grid_topology(8),
            radio=DuplicatingRadio(duplicate_rate=0.5, seed=5),
        )
        result = CountProtocol().run(network)
        assert result.value == 50


class TestPushSumGossip:
    def test_average_on_clique(self):
        items = list(range(1, 33))
        network = SensorNetwork.from_items(items, topology=single_hop_topology(32))
        gossip = PushSumGossip(seed=1)
        outcome = gossip.run(network, lambda node: float(node.single_item())).value
        true_average = sum(items) / len(items)
        assert abs(outcome.estimate - true_average) / true_average < 0.05

    def test_sum_target(self):
        items = [1] * 16
        network = SensorNetwork.from_items(items, topology=single_hop_topology(16))
        gossip = PushSumGossip(seed=2, target="sum", rounds=200)
        outcome = gossip.run(network, lambda node: float(node.single_item())).value
        assert abs(outcome.estimate - 16) / 16 < 0.2

    def test_line_converges_more_slowly(self):
        items = list(range(1, 17))
        clique = SensorNetwork.from_items(items, topology=single_hop_topology(16))
        line = SensorNetwork.from_items(items, topology=line_topology(16))
        rounds = 30
        clique_outcome = PushSumGossip(seed=3, rounds=rounds).run(
            clique, lambda node: float(node.single_item())
        ).value
        line_outcome = PushSumGossip(seed=3, rounds=rounds).run(
            line, lambda node: float(node.single_item())
        ).value
        assert clique_outcome.max_relative_spread <= line_outcome.max_relative_spread + 1e-9

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            PushSumGossip(target="median")

    def test_communication_charged_every_round(self):
        items = [5] * 9
        network = SensorNetwork.from_items(items, topology=grid_topology(3))
        PushSumGossip(seed=4, rounds=10).run(network, lambda node: 1.0)
        assert network.ledger.rounds == 10
        assert network.ledger.total_messages == 10 * 9
