"""Self-healing spanning trees: incremental re-attachment of orphaned subtrees.

When a node crashes (or a tree link drops), each of its surviving child
subtrees becomes an *orphan unit*: an intact tree fragment with no route to
the root.  Rebuilding the whole BFS tree from scratch costs a flood over
every alive graph edge plus a full summary recompute — :class:`TreeRepair`
instead re-attaches each unit through a local adoption handshake:

1. compute the *attached* set — alive nodes still connected to the root via
   surviving tree edges — and group the remaining alive nodes into orphan
   units (maximal fragments of surviving tree edges; a rejoining node is a
   singleton unit);
2. grow an adoption frontier outward from the attached region: when an
   attached node ``a`` hears an orphaned graph-neighbour ``x``, ``x`` adopts
   ``a`` as its parent (one request + one ack on the graph edge) and the
   unit re-roots itself at ``x`` by reversing the parent pointers along the
   path from ``x`` to the fragment's old top — one small pointer-flip
   message per reversed edge.  Every other member keeps its parent and
   children untouched, which is what lets the streaming layer re-synchronise
   only along repaired paths.  A handshake whose radio delivery *permanently*
   fails does not kill the epoch: the unit falls back to its next candidate
   attachment point, and the repair aborts only when every candidate of an
   orphan unit has been exhausted;
3. repeat wave by wave until no orphan is adjacent to the attached region;
   whatever remains is *detached* (physically cut off) and rejoins
   automatically once connectivity returns.

Two execution paths implement the sweep, selected by
``network.execution`` exactly as the protocol traversals do:

* *per-edge* — the reference implementation: the adoption frontier scans
  every attached node's neighbourhood wave by wave, and the repaired tree is
  rebuilt into fresh dictionaries.  O(alive graph edges) per fault epoch.
* *batched* (default) — operates on the
  :class:`~repro.network.FlatTree` arrays: the attached set falls out of one
  top-down array sweep, adoption candidates are enumerated from the (small)
  orphan side through a priority queue that reproduces the reference scan
  order exactly, the rebuild-vs-incremental estimate short-circuits without
  touching the edge set, and the spanning tree plus its flat view are
  patched **in place** via :meth:`~repro.network.FlatTree.rewire` instead of
  rebuilt.  O(damage) where the reference path is O(alive edges).

Both paths attempt the same adoptions in the same order and push every
control message through :meth:`~repro.network.SensorNetwork.send_batch`, so
their ledgers — including lossy-radio retries — are bit-for-bit identical
(enforced by the randomized equivalence suite).

When the *estimated* incremental cost exceeds ``rebuild_threshold`` times
the estimated flood cost — or when ``strategy="rebuild"`` pins the naive
policy for baselines — the repair falls back to rebuilding the BFS tree of
the alive root-component from scratch, charging the flood (two tokens per
alive edge, one parent-ack per node) that a distributed BFS construction
costs.  The fault benchmarks measure exactly this trade.

Even the root may die.  A repair that finds the root dead defers to its
configured :class:`~repro.faults.RootElection` (raising
:class:`~repro.exceptions.ConfigurationError` when none is wired up): the
election charges a leader handover under its own ``faults:election`` ledger
key and re-roots the network's identity at the highest surviving id, after
which the repair pass runs *seeded* — the winner's surviving fragment,
re-rooted along the election's reversed root path, plays the role of the
attached region, and every other fragment re-attaches through the ordinary
adoption cascade.  The seeded pass materialises the re-rooted tree through
:func:`~repro.network.spanning_tree.tree_from_parents` on both execution
paths (a root change moves every depth, so the O(damage) in-place
:meth:`~repro.network.FlatTree.rewire` has no edge to offer), and the
resulting :class:`RepairResult` carries the
:class:`~repro.faults.ElectionResult` so stream recovery can migrate its
caches along the reversed path.

**Ledger keys.**  All repair control traffic — adoption request/ack pairs,
pointer flips, rebuild flood tokens and parent acks — is charged under
``faults:repair`` (:attr:`TreeRepair.protocol`); a root fail-over's
election traffic lands under ``faults:election`` and heartbeat sweeps
under ``faults:heartbeat``, so per-protocol ledger snapshots decompose the
resilience bill exactly.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right, insort
from collections import deque
from itertools import compress
from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.exceptions import ConfigurationError, DeliveryError
from repro.faults.election import ElectionResult, RootElection
from repro.network.radio import ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.network.spanning_tree import (
    bfs_tree,
    bounded_degree_tree,
    tree_from_parents,
)

#: Valid values of :attr:`TreeRepair.strategy`.
REPAIR_STRATEGIES = ("incremental", "rebuild")

#: Adoption request an orphan sends to an attached graph-neighbour
#: (type + epoch tag + fragment size estimate).
ATTACH_REQUEST_BITS = 32
#: The adopter's acknowledgement (type + its own level).
ATTACH_ACK_BITS = 16
#: Pointer-flip notification along the re-rooting path inside a unit.
REVERSAL_BITS = 16
#: One BFS-construction token, flooded over every alive edge (both
#: directions) by the rebuild-from-scratch fallback.
REBUILD_TOKEN_BITS = 16
#: Parent-choice acknowledgement each node sends once during a rebuild.
REBUILD_ACK_BITS = 16


@dataclass(frozen=True)
class RepairResult:
    """What one repair pass did to the spanning tree.

    ``parent_changed`` lists the nodes (attached in the new tree) whose
    parent pointer changed — exactly the nodes whose next transmission must
    be a full summary, since their new parent caches nothing for them.
    ``child_losses`` lists ``(parent, lost_child)`` pairs for parents that
    remain attached — the cache entries the streaming layer must evict.
    ``removed`` are previously-spanned nodes no longer in the tree (crashed
    or cut off); ``detached`` are alive nodes left without a route to the
    root.  On a full rebuild both patch lists are empty and consumers reset
    everything instead.

    ``election`` is set when this repair pass began with a root fail-over:
    the attached :class:`~repro.faults.ElectionResult` carries the handover
    (old/new root, reversed root path, election bits); ``control_bits``
    still counts the repair's own traffic only, so the two cost streams
    stay separable.
    """

    strategy: str
    rebuilt: bool
    parent_changed: tuple[int, ...]
    child_losses: tuple[tuple[int, int], ...]
    removed: tuple[int, ...]
    detached: tuple[int, ...]
    control_bits: int
    control_messages: int
    rounds: int
    election: ElectionResult | None = None

    @property
    def changed_anything(self) -> bool:
        return self.strategy != "noop"


_NOOP = RepairResult(
    strategy="noop",
    rebuilt=False,
    parent_changed=(),
    child_losses=(),
    removed=(),
    detached=(),
    control_bits=0,
    control_messages=0,
    rounds=0,
)


@dataclass
class _Cascade:
    """Mutable bookkeeping shared by one adoption sweep.

    Both execution paths feed the same fields in the same order, so the
    results they materialise afterwards are identical.  ``deferred_links`` /
    ``deferred_sizes`` buffer the control traffic when the radio is the
    perfect-delivery singleton: no handshake can fail, so charging the whole
    cascade in one ledger batch is bit-for-bit the same as charging each
    adoption as it happens — minus thousands of tiny batch calls.
    """

    attached: set
    parent_overrides: dict[int, int] = field(default_factory=dict)
    parent_changed: list[int] = field(default_factory=list)
    adopted_units: list[tuple[int, int, int]] = field(default_factory=list)
    attach_log: list[int] = field(default_factory=list)
    failed_units: set[int] = field(default_factory=set)
    waves: int = 0
    deferred_links: list[tuple[int, int]] | None = None
    deferred_sizes: list[int] | None = None


class TreeRepair:
    """Incremental spanning-tree repair with a rebuild-from-scratch fallback."""

    def __init__(
        self,
        strategy: str = "incremental",
        rebuild_threshold: float = 1.0,
        protocol: str = "faults:repair",
        execution: str | None = None,
        election: RootElection | None = None,
    ) -> None:
        if strategy not in REPAIR_STRATEGIES:
            raise ConfigurationError(
                f"unknown repair strategy {strategy!r}; known: {REPAIR_STRATEGIES}"
            )
        if rebuild_threshold <= 0:
            raise ConfigurationError(
                f"rebuild_threshold must be positive, got {rebuild_threshold}"
            )
        if execution is not None and execution not in ("batched", "per-edge"):
            raise ConfigurationError(
                f"unknown execution mode {execution!r}; known: batched, per-edge"
            )
        self.strategy = strategy
        self.rebuild_threshold = rebuild_threshold
        self.protocol = protocol
        #: Which repair implementation to run; ``None`` (default) follows
        #: ``network.execution``, an explicit value pins one path — the fault
        #: benchmarks use this to race the two repair implementations on
        #: identical batched-core networks.
        self.execution = execution
        #: How to replace a dead root.  ``None`` means a dead root is an
        #: error at repair time; :class:`~repro.faults.FaultEngine` installs
        #: a default :class:`~repro.faults.RootElection` here so scripted
        #: :class:`~repro.faults.RootCrash` events fail over out of the box.
        self.election = election

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def repair(
        self, network: SensorNetwork, election: RootElection | None = None
    ) -> RepairResult:
        """Re-span the alive, root-connected population; return what changed.

        Reads the network's graph, spanning tree and alive-mask; installs the
        repaired :class:`~repro.network.SpanningTree` on the network and
        charges every control message to the ledger under :attr:`protocol`.
        Returns a no-op result when the existing tree already spans exactly
        the attachable population.  Dispatches on ``network.execution``; the
        two paths are ledger-identical and produce identical trees.

        A dead root defers to ``election`` (falling back to
        :attr:`election`): the handover is charged and the repair runs
        seeded with the winner's re-rooted fragment — see the module
        docstring.  With no election configured a dead root raises
        :class:`~repro.exceptions.ConfigurationError`.

        Raises :class:`~repro.exceptions.DeliveryError` when an orphan unit
        with at least one permanently-failed adoption handshake exhausted
        every candidate attachment point; the partially repaired tree (with
        such units detached) is installed first, and the completed
        :class:`RepairResult` rides on the exception as ``repair_result``.
        """
        telemetry = network.telemetry
        with telemetry.span("repair", strategy=self.strategy) as span:
            result = self._repair_impl(network, election)
            if telemetry.enabled:
                span.annotate(
                    rebuilt=result.rebuilt,
                    reparented=len(result.parent_changed),
                    detached=len(result.detached),
                )
                telemetry.count("repair.passes", 1)
                if result.rebuilt:
                    telemetry.count("repair.fallbacks", 1)
        return result

    def _repair_impl(
        self, network: SensorNetwork, election: RootElection | None
    ) -> RepairResult:
        elected: ElectionResult | None = None
        if not network.is_alive(network.root_id):
            chooser = election if election is not None else self.election
            if chooser is None:
                raise ConfigurationError(
                    "cannot repair a network whose root is dead without an "
                    "election; configure TreeRepair(election=RootElection()) "
                    "or drive repairs through FaultEngine, which wires one up"
                )
            elected = chooser.elect(network)
        execution = self.execution if self.execution is not None else network.execution
        if execution == "per-edge":
            return self._repair_per_edge(network, elected)
        return self._repair_batched(network, elected)

    # ------------------------------------------------------------------ #
    # Per-edge reference path
    # ------------------------------------------------------------------ #
    def _repair_per_edge(
        self, network: SensorNetwork, elected: ElectionResult | None = None
    ) -> RepairResult:
        tree = network.tree
        graph = network.graph
        root = network.root_id
        old_parent = tree.parent
        old_children = tree.children
        has_edge = graph.has_edge
        is_alive = network.is_alive

        if elected is not None:
            # Root fail-over: the election already decided the attached
            # region — the winner's surviving fragment, re-rooted along the
            # charged reversed root path.  Everything else cascades as usual.
            attached = set(elected.winner_fragment)
        else:
            # Survivors: BFS from the root over tree edges whose child end
            # is alive and whose graph edge still exists.
            attached = {root}
            stack = [root]
            while stack:
                node = stack.pop()
                for child in old_children[node]:
                    if is_alive(child) and has_edge(child, node):
                        attached.add(child)
                        stack.append(child)

        unattached = [
            node for node in network.alive_node_ids() if node not in attached
        ]
        old_nodes = set(old_parent)
        if not unattached and attached == old_nodes:
            return _NOOP

        if self.strategy == "rebuild":
            return self._rebuild(network, old_nodes, elected)

        units, unit_id, unit_parent = self._orphan_units(network, unattached)
        if units and self._should_rebuild(network, units, unattached):
            return self._rebuild(network, old_nodes, elected)

        before = network.ledger.counters_snapshot()
        cascade = _Cascade(attached=attached)
        # ``get``: a seeded fragment may contain the winner as a node an
        # earlier repair left outside the tree (a detached survivor), which
        # has no old parent to inherit.
        new_parent: dict[int, int | None] = {
            node: old_parent.get(node) for node in attached
        }
        if elected is not None:
            new_parent[elected.new_root] = None
            for node, new_par in elected.flips:
                new_parent[node] = new_par
            cascade.parent_changed.extend(node for node, _ in elected.flips)
        frontier = sorted(attached)
        while frontier:
            wave_added: list[int] = []
            for adopter in frontier:
                for orphan in sorted(graph.neighbors(adopter)):
                    if orphan in attached or not is_alive(orphan):
                        continue
                    self._adopt_unit(
                        network,
                        orphan,
                        adopter,
                        units,
                        unit_id,
                        unit_parent,
                        cascade,
                        wave_added,
                    )
            if wave_added:
                cascade.waves += 1
            frontier = wave_added

        for member in cascade.attach_log:
            new_parent[member] = cascade.parent_overrides.get(
                member, unit_parent[member]
            )

        detached = tuple(
            node for node in sorted(unit_id) if node not in attached
        )
        child_losses: list[tuple[int, int]] = []
        for child, parent in old_parent.items():
            if parent is None or parent not in attached:
                continue
            if new_parent.get(child) != parent:
                child_losses.append((parent, child))
        removed = tuple(sorted(old_nodes - attached))

        network.tree = tree_from_parents(
            root, {node: new_parent[node] for node in attached}
        )
        network.ledger.advance_round(cascade.waves)
        after = network.ledger.counters_snapshot()
        result = RepairResult(
            strategy="incremental",
            rebuilt=False,
            parent_changed=tuple(cascade.parent_changed),
            child_losses=tuple(sorted(child_losses)),
            removed=removed,
            detached=detached,
            control_bits=after.total_bits - before.total_bits,
            control_messages=after.messages - before.messages,
            rounds=cascade.waves,
            election=elected,
        )
        self._raise_if_exhausted(cascade, units, result)
        return result

    # ------------------------------------------------------------------ #
    # Batched path: flat arrays, orphan-side candidates, in-place patch
    # ------------------------------------------------------------------ #
    def _repair_batched(
        self, network: SensorNetwork, elected: ElectionResult | None = None
    ) -> RepairResult:
        if elected is not None:
            return self._repair_batched_seeded(network, elected)
        tree = network.tree
        flat = network.flat_tree
        adjacency = network.graph._adj  # raw dict-of-dicts: the hot sweeps
        node_ids = flat.node_ids
        parent_pos = flat.parent
        num_old = flat.num_nodes
        dead = set(network.dead_node_ids())

        # Attached sweep: canonical order is top-down, so each node's parent
        # has already been classified when the node is reached.  The sweep
        # simultaneously collects the alive old-tree nodes that fell off;
        # the attached set itself is materialised in one C pass afterwards.
        attached_mask = bytearray(num_old)
        unattached_tree: list[int] = []
        if num_old:
            attached_mask[0] = 1
        for position in range(1, num_old):
            node = node_ids[position]
            if node in dead:
                continue
            if attached_mask[parent_pos[position]] and node in adjacency[
                node_ids[parent_pos[position]]
            ]:
                attached_mask[position] = 1
            else:
                unattached_tree.append(node)
        attached = set(compress(node_ids, attached_mask))

        # Alive nodes outside the old tree (rejoined or reconnecting after a
        # detachment) exist only when the population counts disagree; the
        # common fault epoch skips the full scan.
        if len(attached) + len(unattached_tree) == network.num_alive:
            unattached = sorted(unattached_tree)
        else:
            unattached = [
                node for node in network.alive_node_ids() if node not in attached
            ]
        if not unattached and len(attached) == num_old:
            return _NOOP

        if self.strategy == "rebuild":
            return self._rebuild(network, set(tree.parent))

        units, unit_id, unit_parent = self._orphan_units(network, unattached)
        if units and self._should_rebuild_batched(
            network, units, unattached, len(attached)
        ):
            return self._rebuild(network, set(tree.parent))

        before = network.ledger.counters_snapshot()
        cascade = _Cascade(attached=attached)
        if type(network.radio) is ReliableRadio:
            cascade.deferred_links = []
            cascade.deferred_sizes = []
        remaining = set(unattached)
        self._adoption_cascade_batched(
            network, adjacency, units, unit_id, unit_parent, cascade, remaining
        )
        if cascade.deferred_links:
            network.send_batch(
                cascade.deferred_links,
                cascade.deferred_sizes,
                protocol=self.protocol,
                require_edge=False,
            )

        detached = tuple(
            node for node in sorted(unit_id) if node not in attached
        )

        # O(damage) bookkeeping: the only candidates for a cache eviction or
        # a removal are reparented nodes and old-tree nodes that fell out.
        old_parent = tree.parent
        removed_list = [node for node in sorted(dead) if node in old_parent]
        removed_list.extend(node for node in detached if node in old_parent)
        removed = tuple(sorted(removed_list))
        parent_overrides = cascade.parent_overrides
        child_losses: list[tuple[int, int]] = []
        for child in cascade.parent_changed:
            old = old_parent.get(child)
            if old is not None and old in attached and parent_overrides[child] != old:
                child_losses.append((old, child))
        for child in removed:
            old = old_parent[child]
            if old is not None and old in attached:
                child_losses.append((old, child))
        child_losses.sort()

        self._patch_tree_in_place(
            network, flat, cascade, units, unit_parent, removed, child_losses
        )

        network.ledger.advance_round(cascade.waves)
        after = network.ledger.counters_snapshot()
        result = RepairResult(
            strategy="incremental",
            rebuilt=False,
            parent_changed=tuple(cascade.parent_changed),
            child_losses=tuple(child_losses),
            removed=removed,
            detached=detached,
            control_bits=after.total_bits - before.total_bits,
            control_messages=after.messages - before.messages,
            rounds=cascade.waves,
        )
        self._raise_if_exhausted(cascade, units, result)
        return result

    def _repair_batched_seeded(
        self, network: SensorNetwork, elected: ElectionResult
    ) -> RepairResult:
        """Root fail-over repair on the batched path.

        The adoption cascade still runs on the orphan-side candidate
        machinery (sets, adjacency, the per-unit heap), but the attached
        region is seeded from the election instead of swept out of the flat
        arrays — the flat view is rooted at the dead root and useless here —
        and the re-rooted tree is materialised through
        :func:`~repro.network.spanning_tree.tree_from_parents`: a root
        change moves every depth, so the O(damage) in-place rewire has
        nothing to save.  Both execution paths therefore build the fail-over
        tree identically, and their ledgers stay bit-for-bit equal.
        """
        tree = network.tree
        adjacency = network.graph._adj
        old_parent = tree.parent
        old_nodes = set(old_parent)
        attached = set(elected.winner_fragment)
        unattached = [
            node for node in network.alive_node_ids() if node not in attached
        ]

        if self.strategy == "rebuild":
            return self._rebuild(network, old_nodes, elected)
        units, unit_id, unit_parent = self._orphan_units(network, unattached)
        if units and self._should_rebuild_batched(
            network, units, unattached, len(attached)
        ):
            return self._rebuild(network, old_nodes, elected)

        before = network.ledger.counters_snapshot()
        cascade = _Cascade(attached=attached)
        cascade.parent_changed.extend(node for node, _ in elected.flips)
        if type(network.radio) is ReliableRadio:
            cascade.deferred_links = []
            cascade.deferred_sizes = []
        remaining = set(unattached)
        self._adoption_cascade_batched(
            network, adjacency, units, unit_id, unit_parent, cascade, remaining
        )
        if cascade.deferred_links:
            network.send_batch(
                cascade.deferred_links,
                cascade.deferred_sizes,
                protocol=self.protocol,
                require_edge=False,
            )

        detached = tuple(
            node for node in sorted(unit_id) if node not in attached
        )
        new_parent: dict[int, int | None] = {
            node: old_parent.get(node) for node in elected.winner_fragment
        }
        new_parent[elected.new_root] = None
        for node, new_par in elected.flips:
            new_parent[node] = new_par
        for member in cascade.attach_log:
            new_parent[member] = cascade.parent_overrides.get(
                member, unit_parent[member]
            )
        child_losses: list[tuple[int, int]] = []
        for child, parent in old_parent.items():
            if parent is None or parent not in attached:
                continue
            if new_parent.get(child) != parent:
                child_losses.append((parent, child))
        removed = tuple(sorted(old_nodes - attached))

        network.tree = tree_from_parents(
            network.root_id, {node: new_parent[node] for node in attached}
        )
        network.ledger.advance_round(cascade.waves)
        after = network.ledger.counters_snapshot()
        result = RepairResult(
            strategy="incremental",
            rebuilt=False,
            parent_changed=tuple(cascade.parent_changed),
            child_losses=tuple(sorted(child_losses)),
            removed=removed,
            detached=detached,
            control_bits=after.total_bits - before.total_bits,
            control_messages=after.messages - before.messages,
            rounds=cascade.waves,
            election=elected,
        )
        self._raise_if_exhausted(cascade, units, result)
        return result

    def _adoption_cascade_batched(
        self,
        network: SensorNetwork,
        adjacency,
        units: list[list[int]],
        unit_id: dict[int, int],
        unit_parent: dict[int, int | None],
        cascade: _Cascade,
        remaining: set[int],
    ) -> None:
        """Run the adoption waves from the orphan side.

        The reference scan attempts candidate ``(adopter, orphan)`` pairs in
        ascending ``(adopter rank, orphan id)`` order within a wave, where
        rank is the adopter's id in wave one and its position in the
        previous wave's attach order afterwards; a pair is only *attempted*
        while its orphan's unit is unattached.  The globally next attempted
        pair is therefore the minimum over units of each unit's cheapest
        untried candidate — a priority queue over per-unit minima reproduces
        the exact sequence while only ever touching the orphan side's
        adjacency, which is what makes the pass O(damage).
        """
        attached = cascade.attached
        added_in_cascade: set[int] = set()
        wave_members: list[int] | None = None  # None = wave one (original attached)
        while remaining:
            # Cheapest candidate per unit, scanned from whichever side of the
            # attached/orphan boundary has fewer nodes — both scans visit the
            # same boundary edges, and the minimum per unit is the same.
            best: dict[int, tuple[int, int]] = {}
            if wave_members is None:
                # Wave one: the adopters are the original attached set and
                # nothing has been adopted yet, so C-level set intersections
                # against the adjacency key views do the boundary scan.
                if len(attached) < len(remaining):
                    for adopter in attached:
                        for orphan in remaining.intersection(adjacency[adopter]):
                            unit = unit_id[orphan]
                            key = (adopter, orphan)
                            if unit not in best or key < best[unit]:
                                best[unit] = key
                else:
                    for orphan in remaining:
                        hits = attached.intersection(adjacency[orphan])
                        if hits:
                            unit = unit_id[orphan]
                            key = (min(hits), orphan)
                            if unit not in best or key < best[unit]:
                                best[unit] = key
                in_cascade = added_in_cascade

                def rank_of(
                    neighbor: int,
                    _attached=attached,
                    _in_cascade=in_cascade,
                ) -> int | None:
                    if neighbor in _attached and neighbor not in _in_cascade:
                        return neighbor
                    return None

                def adopter_of(rank: int) -> int:
                    return rank
            else:
                position_of = {
                    member: position for position, member in enumerate(wave_members)
                }
                get_position = position_of.get
                if len(wave_members) < len(remaining):
                    for position, adopter in enumerate(wave_members):
                        for orphan in remaining.intersection(adjacency[adopter]):
                            unit = unit_id[orphan]
                            key = (position, orphan)
                            if unit not in best or key < best[unit]:
                                best[unit] = key
                else:
                    member_set = set(position_of)
                    for orphan in remaining:
                        hits = member_set.intersection(adjacency[orphan])
                        if hits:
                            rank_min = min(position_of[hit] for hit in hits)
                            unit = unit_id[orphan]
                            key = (rank_min, orphan)
                            if unit not in best or key < best[unit]:
                                best[unit] = key

                def rank_of(neighbor: int, _get=get_position) -> int | None:
                    return _get(neighbor)

                def adopter_of(rank: int, _members=wave_members) -> int:
                    return _members[rank]

            wave_added = self._run_wave(
                network,
                adjacency,
                units,
                unit_id,
                unit_parent,
                cascade,
                remaining,
                added_in_cascade,
                best,
                rank_of,
                adopter_of,
            )
            if not wave_added:
                break
            cascade.waves += 1
            wave_members = wave_added

    def _run_wave(
        self,
        network: SensorNetwork,
        adjacency,
        units: list[list[int]],
        unit_id: dict[int, int],
        unit_parent: dict[int, int | None],
        cascade: _Cascade,
        remaining: set[int],
        added_in_cascade: set[int],
        best: dict[int, tuple[int, int]],
        rank_of: Callable[[int], int | None],
        adopter_of: Callable[[int], int],
    ) -> list[int]:
        heap = [(rank, orphan, unit) for unit, (rank, orphan) in best.items()]
        heapq.heapify(heap)

        # Full per-unit candidate lists are materialised only after a failed
        # handshake (rare), to find the unit's next attachment point.
        fallback: dict[int, tuple[list[tuple[int, int]], int]] = {}
        wave_added: list[int] = []
        while heap:
            rank, orphan, unit = heapq.heappop(heap)
            if units[unit][0] in cascade.attached:
                continue  # defensive: the unit was adopted already
            adopter = adopter_of(rank)
            adopted = self._adopt_unit(
                network,
                orphan,
                adopter,
                units,
                unit_id,
                unit_parent,
                cascade,
                wave_added,
            )
            if adopted:
                for member in units[unit]:
                    remaining.discard(member)
                    added_in_cascade.add(member)
                continue
            entry = fallback.get(unit)
            if entry is None:
                pairs: list[tuple[int, int]] = []
                for member in units[unit]:
                    for neighbor in adjacency[member]:
                        neighbor_rank = rank_of(neighbor)
                        if neighbor_rank is not None:
                            pairs.append((neighbor_rank, member))
                pairs.sort()
                entry = (pairs, bisect_right(pairs, (rank, orphan)))
            pairs, cursor = entry
            if cursor < len(pairs):
                next_rank, next_orphan = pairs[cursor]
                fallback[unit] = (pairs, cursor + 1)
                heapq.heappush(heap, (next_rank, next_orphan, unit))
        return wave_added

    def _patch_tree_in_place(
        self,
        network: SensorNetwork,
        flat,
        cascade: _Cascade,
        units: list[list[int]],
        unit_parent: dict[int, int | None],
        removed: tuple[int, ...],
        child_losses: list[tuple[int, int]],
    ) -> None:
        """Apply the cascade to the tree dictionaries and rewire the flat view.

        Touches only removed nodes, reparented nodes and re-attached unit
        members; every other entry — and its position in the canonical
        traversal order — is untouched, which is what keeps the pass
        O(damage) instead of O(network).
        """
        tree = network.tree
        parent_map = tree.parent
        children = tree.children
        depth_map = tree.depth
        overrides = cascade.parent_overrides

        for parent, child in child_losses:
            children[parent].remove(child)
        for node in removed:
            del parent_map[node]
            del children[node]
            del depth_map[node]

        new_depths: dict[int, int] = {}
        for unit, contact, adopter in cascade.adopted_units:
            members = units[unit]
            if len(members) == 1:
                # Singleton fast path: one pointer, one depth, no re-rooting
                # (the common case under churn and every rejoin).
                if contact not in parent_map:
                    children[contact] = []
                parent_map[contact] = adopter
                insort(children[adopter], contact)
                level = depth_map[adopter] + 1
                depth_map[contact] = level
                new_depths[contact] = level
                continue
            final_parent = {
                member: overrides.get(member, unit_parent[member])
                for member in members
            }
            for member in members:
                target = final_parent[member]
                if member in parent_map:
                    if parent_map[member] != target:
                        parent_map[member] = target
                        insort(children[target], member)
                else:
                    # A node re-entering the tree (rejoined, or reconnected
                    # after being detached) arrives as a singleton unit.
                    parent_map[member] = target
                    children[member] = []
                    insort(children[target], member)
            # Fresh depths ripple out from the contact point; the adopter's
            # depth is final because units are processed in adoption order.
            kids_within: dict[int, list[int]] = {}
            for member in members:
                kids_within.setdefault(final_parent[member], []).append(member)
            queue = deque([(contact, depth_map[adopter] + 1)])
            while queue:
                member, level = queue.popleft()
                depth_map[member] = level
                new_depths[member] = level
                for child in kids_within.get(member, ()):
                    queue.append((child, level + 1))

        network.set_tree(
            tree,
            flat_tree=flat.rewire(
                removed=removed, reparented=overrides, depths=new_depths
            ),
        )

    # ------------------------------------------------------------------ #
    # Shared adoption transaction
    # ------------------------------------------------------------------ #
    def _adopt_unit(
        self,
        network: SensorNetwork,
        orphan: int,
        adopter: int,
        units: list[list[int]],
        unit_id: dict[int, int],
        unit_parent: dict[int, int | None],
        cascade: _Cascade,
        wave_added: list[int],
    ) -> bool:
        """Attempt one adoption handshake; on success re-root the unit.

        The request/ack pair and the pointer-flip chain are charged through
        the radio models *at adoption time*, so a permanent delivery failure
        of the handshake leaves the unit unattached (the caller falls back
        to its next candidate) instead of aborting the repair.  A failure
        inside the pointer-flip chain still propagates: the unit is already
        committed to its new attachment point at that stage.
        """
        links = [(orphan, adopter), (adopter, orphan)]
        sizes = [ATTACH_REQUEST_BITS, ATTACH_ACK_BITS]
        reversal_path: list[int] = []
        child = orphan
        ancestor = unit_parent[orphan]
        while ancestor is not None:
            links.append((child, ancestor))
            sizes.append(REVERSAL_BITS)
            reversal_path.append(ancestor)
            child = ancestor
            ancestor = unit_parent[ancestor]
        if cascade.deferred_links is not None:
            # Perfect radio: no handshake can fail, charge the cascade in
            # one batch at the end (identical ledger, far fewer calls).
            cascade.deferred_links.extend(links)
            cascade.deferred_sizes.extend(sizes)
        else:
            try:
                network.send_batch(
                    links, sizes, protocol=self.protocol, require_edge=False
                )
            except DeliveryError as error:
                delivered = getattr(error, "outcomes_before_failure", ())
                if len(delivered) < 2:
                    # The handshake itself never completed: nothing was
                    # committed, the caller may try another attachment point.
                    cascade.failed_units.add(unit_id[orphan])
                    return False
                raise  # a pointer flip failed after the unit committed
        unit = unit_id[orphan]
        cascade.adopted_units.append((unit, orphan, adopter))
        telemetry = network.telemetry
        if telemetry.enabled:
            telemetry.event(
                "repair.adoption",
                node=orphan,
                adopter=adopter,
                unit_size=len(units[unit]),
            )
        overrides = cascade.parent_overrides
        changed = cascade.parent_changed
        overrides[orphan] = adopter
        changed.append(orphan)
        child = orphan
        for ancestor in reversal_path:
            overrides[ancestor] = child
            changed.append(ancestor)
            child = ancestor
        attached = cascade.attached
        attach_log = cascade.attach_log
        for member in units[unit]:
            attached.add(member)
            attach_log.append(member)
            wave_added.append(member)
        return True

    def _raise_if_exhausted(
        self,
        cascade: _Cascade,
        units: list[list[int]],
        result: RepairResult,
    ) -> None:
        exhausted = sorted(
            unit
            for unit in cascade.failed_units
            if units[unit][0] not in cascade.attached
        )
        if exhausted:
            members = [tuple(units[unit]) for unit in exhausted]
            error = DeliveryError(
                f"adoption exhausted every candidate attachment point for "
                f"orphan unit(s) {members}; the repaired tree (with those "
                "units detached) was installed before raising"
            )
            error.repair_result = result
            raise error

    # ------------------------------------------------------------------ #
    # Orphan-unit discovery (shared; O(damage))
    # ------------------------------------------------------------------ #
    def _orphan_units(
        self,
        network: SensorNetwork,
        unattached: list[int],
    ) -> tuple[list[list[int]], dict[int, int], dict[int, int | None]]:
        """Group unattached alive nodes into maximal surviving tree fragments.

        Returns ``(units, unit_id, unit_parent)``: member lists per unit, the
        node → unit index, and each node's surviving old parent *within its
        unit* (``None`` at the fragment top).  A unit is a subtree of the old
        tree, so exactly one member has no in-unit parent.
        """
        tree = network.tree
        old_parent = tree.parent
        old_children = tree.children
        adjacency = network.graph._adj
        get_parent = old_parent.get
        get_children = old_children.get
        unattached_set = set(unattached)
        unit_id: dict[int, int] = {}
        unit_parent: dict[int, int | None] = {}
        units: list[list[int]] = []
        for start in unattached:  # ascending ids: deterministic unit numbering
            if start in unit_id:
                continue
            # ``members`` doubles as the BFS queue: the cursor walks it while
            # discovery appends, preserving the exact breadth-first member
            # order the per-edge path produces.
            members = [start]
            unit = len(units)
            unit_id[start] = unit
            cursor = 0
            while cursor < len(members):
                node = members[cursor]
                cursor += 1
                parent = get_parent(node)
                neighbors = adjacency[node]
                if (
                    parent is not None
                    and parent in unattached_set
                    and parent in neighbors
                ):
                    unit_parent[node] = parent
                    if parent not in unit_id:
                        unit_id[parent] = unit
                        members.append(parent)
                else:
                    unit_parent[node] = None
                for child in get_children(node, ()):
                    if (
                        child in unattached_set
                        and child in neighbors
                        and child not in unit_id
                    ):
                        unit_id[child] = unit
                        members.append(child)
            units.append(members)
        return units, unit_id, unit_parent

    # ------------------------------------------------------------------ #
    # Rebuild-vs-incremental estimate
    # ------------------------------------------------------------------ #
    def _should_rebuild(
        self,
        network: SensorNetwork,
        units: list[list[int]],
        unattached: list[int],
    ) -> bool:
        """Compare the incremental cost upper bound against the flood estimate.

        The reference computation: one pass over the whole edge set.
        """
        estimated_incremental = len(units) * (
            ATTACH_REQUEST_BITS + ATTACH_ACK_BITS
        ) + len(unattached) * REVERSAL_BITS
        is_alive = network.is_alive
        alive_edges = sum(
            1 for u, v in network.graph.edges() if is_alive(u) and is_alive(v)
        )
        estimated_rebuild = (
            2 * alive_edges + network.num_alive
        ) * REBUILD_TOKEN_BITS
        return estimated_incremental > self.rebuild_threshold * estimated_rebuild

    def _should_rebuild_batched(
        self,
        network: SensorNetwork,
        units: list[list[int]],
        unattached: list[int],
        num_attached: int,
    ) -> bool:
        """Same decision as :meth:`_should_rebuild` without the edge scan.

        The surviving tree edges alone bound the alive edge count from
        below — the attached region is connected (``num_attached - 1``
        edges) and every orphan unit is a surviving fragment (``size - 1``
        edges each) — which bounds the flood estimate from below and settles
        the comparison whenever the incremental estimate is already cheaper
        than that, the common case by orders of magnitude.  Only near the
        boundary is the exact count computed, and then from the (small) dead
        boundary rather than the whole edge set: an edge is dead exactly
        when it touches a dead node.
        """
        estimated_incremental = len(units) * (
            ATTACH_REQUEST_BITS + ATTACH_ACK_BITS
        ) + len(unattached) * REVERSAL_BITS
        surviving_tree_edges = (
            max(0, num_attached - 1) + len(unattached) - len(units)
        )
        lower_bound = (
            2 * surviving_tree_edges + network.num_alive
        ) * REBUILD_TOKEN_BITS
        if estimated_incremental <= self.rebuild_threshold * lower_bound:
            return False
        adjacency = network.graph._adj
        dead = network.dead_node_ids()
        dead_set = set(dead)
        incident = 0
        dead_to_dead = 0
        for node in dead:
            neighbors = adjacency[node]
            incident += len(neighbors)
            for neighbor in neighbors:
                if neighbor in dead_set:
                    dead_to_dead += 1
        alive_edges = (
            network.graph.number_of_edges() - incident + dead_to_dead // 2
        )
        estimated_rebuild = (
            2 * alive_edges + network.num_alive
        ) * REBUILD_TOKEN_BITS
        return estimated_incremental > self.rebuild_threshold * estimated_rebuild

    # ------------------------------------------------------------------ #
    # Rebuild-from-scratch fallback (shared)
    # ------------------------------------------------------------------ #
    def _rebuild(
        self,
        network: SensorNetwork,
        old_nodes: set[int],
        elected: ElectionResult | None = None,
    ) -> RepairResult:
        graph = network.graph
        root = network.root_id
        alive = set(network.alive_node_ids())
        component = nx.node_connected_component(graph.subgraph(alive), root)
        component_graph = graph.subgraph(component)
        if network.degree_bound is None:
            tree = bfs_tree(component_graph, root)
        else:
            tree = bounded_degree_tree(
                component_graph, root, max_degree=network.degree_bound
            )
        # A distributed BFS construction floods a token over every usable
        # edge in both directions, then every node acks its chosen parent.
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        for u, v in component_graph.edges():
            links.append((u, v))
            sizes.append(REBUILD_TOKEN_BITS)
            links.append((v, u))
            sizes.append(REBUILD_TOKEN_BITS)
        for node, parent in tree.parent.items():
            if parent is not None:
                links.append((node, parent))
                sizes.append(REBUILD_ACK_BITS)
        network.tree = tree
        rounds = tree.height + 1
        before = network.ledger.counters_snapshot()
        if links:
            network.send_batch(links, sizes, protocol=self.protocol, require_edge=False)
        network.ledger.advance_round(rounds)
        after = network.ledger.counters_snapshot()
        telemetry = network.telemetry
        if telemetry.enabled:
            telemetry.event(
                "repair.rebuild",
                node=root,
                component_size=len(component),
                edges=component_graph.number_of_edges(),
            )
        return RepairResult(
            strategy="rebuild",
            rebuilt=True,
            parent_changed=(),
            child_losses=(),
            removed=tuple(sorted(old_nodes - component)),
            detached=tuple(sorted(alive - component)),
            control_bits=after.total_bits - before.total_bits,
            control_messages=after.messages - before.messages,
            rounds=rounds,
            election=elected,
        )


def attached_mask_vectorized(flat, alive):
    """Root-connectivity as one top-down array sweep over a flat tree.

    The array counterpart of the batched repair's attached-set computation,
    for callers that hold a :class:`~repro.network.FlatTree` plus an
    ``alive`` boolean mask over its canonical positions (the standalone
    :class:`~repro.network.vector_field.VectorField`): a node is attached
    iff it is alive and its parent is attached, seeded at the root.  One
    whole-array pass per tree level, O(n) total, no per-node Python.

    Returns a new boolean mask; ``alive`` is not modified.  The in-tree
    repair machinery is unaffected — under ``execution`` modes
    ``"vectorized"`` and ``"sharded"`` the :class:`TreeRepair` dispatch
    routes to the batched implementation, whose ledger is the reference.
    """
    from repro._util.fastpath import require_numpy

    require_numpy("vectorized attach sweep")
    attached = alive.copy()
    parent = flat.parent
    for start, end in flat.level_spans[1:]:
        attached[start:end] &= attached[parent[start:end]]
    return attached
