"""The span tracer: nested, timed, ledger-metered phases of a run.

A *span* wraps one phase of the epoch pipeline — the heartbeat sweep, the
election, the repair pass, the streaming sweep — and records what that
phase cost in every currency the repository measures: wall-clock seconds
(``perf_counter``), communication bits / messages / rounds (the delta of
the bound :class:`~repro.network.CommunicationLedger`, metered with the
existing O(touched-nodes) :class:`~repro.network.LedgerMark` machinery),
and the largest single-node bit delta inside the phase.

Spans nest: the per-epoch driver opens an ``epoch`` span, the fault
machinery opens ``detect`` / ``repair`` / ``election`` children inside it,
the streaming engine opens ``stream`` with one ``convergecast`` child per
standing query.  Each finished span knows its parent and the inclusive
bits of its direct children, so :attr:`Span.exclusive_bits` — the bits
charged in the span but in none of its children — is exact.  Summing
``exclusive_bits`` over an epoch's subtree therefore reconciles *exactly*
with the ledger's epoch delta; ``tests/test_telemetry.py`` asserts this on
both execution paths (the repository's accounting stance applied to the
telemetry itself: no bit may hide between phases).

The tracer is a :class:`~repro.telemetry.recorder.TelemetryRecorder`, so
installing one on a network (``network.telemetry = SpanTracer()``) turns
on every profiling hook at once; its counters/gauges/histograms land in an
attached :class:`~repro.telemetry.metrics.MetricsRegistry`, and finished
spans export as JSONL via :meth:`SpanTracer.write_jsonl`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import TelemetryRecorder


@dataclass
class Span:
    """One finished phase: its identity, timing, and ledger deltas."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    #: Seconds from tracer start to span open (monotonic clock).
    started_s: float
    #: Wall-clock seconds spent inside the span.
    wall_s: float = 0.0
    #: Ledger deltas over the span (inclusive of child spans).
    bits: int = 0
    messages: int = 0
    rounds: int = 0
    #: Largest per-node bits delta inside the span — the paper's cost
    #: measure, scoped to one phase.
    max_node_bits: int = 0
    #: Inclusive bits of the span's *direct* children.
    child_bits: int = 0
    children: int = 0
    #: Whether the span body raised (the span still closes and meters).
    failed: bool = False
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def exclusive_bits(self) -> int:
        """Bits charged in this span but in none of its children."""
        return self.bits - self.child_bits

    def annotate(self, **attributes: Any) -> None:
        """Attach extra attributes (last write per key wins)."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        """JSON-safe dict — one JSONL line of the trace file."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "started_s": round(self.started_s, 9),
            "wall_s": round(self.wall_s, 9),
            "bits": self.bits,
            "exclusive_bits": self.exclusive_bits,
            "messages": self.messages,
            "rounds": self.rounds,
            "max_node_bits": self.max_node_bits,
            "children": self.children,
            "failed": self.failed,
            "attributes": self.attributes,
        }


class _OpenSpan:
    """The context manager guarding one in-flight span."""

    __slots__ = ("_tracer", "span", "_mark")

    def __init__(self, tracer: "SpanTracer", span: Span, mark: Any) -> None:
        self._tracer = tracer
        self.span = span
        self._mark = mark

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._tracer._close(self, failed=exc_type is not None)
        return False

    def annotate(self, **attributes: Any) -> None:
        self.span.annotate(**attributes)


class SpanTracer(TelemetryRecorder):
    """The concrete recorder: spans + metrics, JSONL out.

    ``ledger`` may be supplied up front or bound later — installing the
    tracer on a :class:`~repro.network.SensorNetwork` binds the network's
    ledger automatically.  Without a ledger, spans still time themselves;
    their bit deltas are zero.  Re-binding while spans are open is a
    configuration error (the open marks would meter the wrong ledger).
    """

    enabled = True

    def __init__(
        self,
        ledger: Any = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
        flight: Any = None,
        attribution: Any = None,
    ) -> None:
        self._ledger = ledger
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._origin = clock()
        self._stack: list[_OpenSpan] = []
        self._next_id = 1
        #: Finished spans, in completion order (children before parents).
        self.spans: list[Span] = []
        #: Optional :class:`~repro.telemetry.flight.FlightRecorder` sink.
        self.flight = flight
        #: Optional :class:`~repro.telemetry.attribution.CostAttribution`
        #: sink, fed each closing span named ``attribution.span_name``.
        self.attribution = attribution

    # ------------------------------------------------------------------ #
    # Recorder protocol
    # ------------------------------------------------------------------ #
    def bind_ledger(self, ledger: Any) -> None:
        if ledger is self._ledger:
            return
        if self._stack:
            raise ConfigurationError(
                "cannot re-bind the tracer's ledger while "
                f"{len(self._stack)} span(s) are open"
            )
        self._ledger = ledger

    def span(self, name: str, **attributes: Any) -> _OpenSpan:
        parent = self._stack[-1].span if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            started_s=self._clock() - self._origin,
            attributes=dict(attributes),
        )
        self._next_id += 1
        mark = self._ledger.mark() if self._ledger is not None else None
        handle = _OpenSpan(self, span, mark)
        self._stack.append(handle)
        return handle

    def count(self, name: str, value: int | float = 1, **labels: str) -> None:
        self.metrics.count(name, value, **labels)

    def gauge(self, name: str, value: int | float, **labels: str) -> None:
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: int | float, **labels: str) -> None:
        self.metrics.observe(name, value, **labels)

    def event(
        self,
        kind: str,
        *,
        node: int | None = None,
        cause: int | None = None,
        **attributes: Any,
    ) -> int | None:
        """Record a causal flight event, anchored to the open span stack.

        The innermost open span becomes ``parent_span_id``; the event's
        epoch is ``attributes["epoch"]`` when the emitter supplies one,
        else the nearest enclosing span that carries an ``epoch``
        attribute.  Returns the event id, or ``None`` with no flight
        recorder attached.
        """
        flight = self.flight
        if flight is None:
            return None
        epoch = attributes.pop("epoch", None)
        if epoch is None:
            for handle in reversed(self._stack):
                epoch = handle.span.attributes.get("epoch")
                if epoch is not None:
                    break
        parent_span_id = self._stack[-1].span.span_id if self._stack else None
        return flight.record(
            kind,
            epoch=epoch,
            node=node,
            parent_span_id=parent_span_id,
            cause=cause,
            **attributes,
        )

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #
    def _close(self, handle: _OpenSpan, failed: bool) -> None:
        if not self._stack or self._stack[-1] is not handle:
            raise ConfigurationError(
                "span closed out of order; spans must close LIFO "
                "(use them as context managers)"
            )
        self._stack.pop()
        span = handle.span
        span.wall_s = self._clock() - self._origin - span.started_s
        span.failed = failed
        ledger = self._ledger
        mark = handle._mark
        if ledger is not None and mark is not None:
            span.bits = ledger.total_bits - mark.total_bits
            span.messages = ledger.total_messages - mark.messages
            span.rounds = ledger.rounds - mark.rounds
            attribution = self.attribution
            deltas = None
            if attribution is not None and span.name == attribution.span_name:
                # Reuse the span's own mark: per-node attribution costs no
                # additional mark, and never a charged bit.  The fold hands
                # back the dense delta array (numpy path) so max_node_bits
                # comes from the same single subtraction.
                deltas = attribution.observe_span(span, ledger, mark)
            if deltas is not None:
                span.max_node_bits = (
                    max(0, int(deltas.max())) if deltas.size else 0
                )
            elif span.bits:
                span.max_node_bits = ledger.max_node_delta_since(mark)
            ledger.release(mark)
        if self._stack:
            parent = self._stack[-1].span
            parent.children += 1
            parent.child_bits += span.bits
        self.spans.append(span)
        metrics = self.metrics
        metrics.observe("phase.wall_s", span.wall_s, phase=span.name)
        if span.bits:
            metrics.count("phase.bits", span.bits, phase=span.name)

    # ------------------------------------------------------------------ #
    # Queries and export
    # ------------------------------------------------------------------ #
    @property
    def open_spans(self) -> int:
        """How many spans are currently in flight."""
        return len(self._stack)

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans called ``name``, in completion order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of a finished span, in completion order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def subtree_of(self, span: Span) -> list[Span]:
        """A finished span plus every descendant, in completion order."""
        wanted = {span.span_id}
        subtree = []
        # Completion order lists children before parents, so walk backwards
        # from the root span and collect ids top-down instead.
        by_parent: dict[int | None, list[Span]] = {}
        for candidate in self.spans:
            by_parent.setdefault(candidate.parent_id, []).append(candidate)
        frontier = [span]
        while frontier:
            current = frontier.pop()
            subtree.append(current)
            for child in by_parent.get(current.span_id, ()):
                if child.span_id not in wanted:
                    wanted.add(child.span_id)
                    frontier.append(child)
        subtree.sort(key=lambda s: s.span_id)
        return subtree

    def phase_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name: count, wall-clock, bits.

        ``bits`` sums *inclusive* deltas (a parent phase's row covers its
        children), ``exclusive_bits`` sums the phase's own traffic only —
        the column whose grand total over every span equals the run's
        total charged bits.
        """
        summary: dict[str, dict[str, float]] = {}
        for span in self.spans:
            row = summary.setdefault(
                span.name,
                {
                    "count": 0,
                    "wall_s": 0.0,
                    "bits": 0,
                    "exclusive_bits": 0,
                    "messages": 0,
                    "max_node_bits": 0,
                },
            )
            row["count"] += 1
            row["wall_s"] += span.wall_s
            row["bits"] += span.bits
            row["exclusive_bits"] += span.exclusive_bits
            row["messages"] += span.messages
            row["max_node_bits"] = max(row["max_node_bits"], span.max_node_bits)
        return summary

    def iter_dicts(self):
        """JSON-safe dicts for the whole trace.

        Spans first, then flight events, then attribution lines, then one
        final metrics line — everything the diagnosis engine needs in one
        JSONL file.
        """
        for span in self.spans:
            yield span.to_dict()
        if self.flight is not None:
            yield from self.flight.iter_dicts()
        if self.attribution is not None:
            yield from self.attribution.iter_dicts()
        yield {"type": "metrics", "metrics": self.metrics.to_dict()}

    def write_jsonl(self, path) -> int:
        """Write the trace (spans + events + attribution + metrics) as JSONL."""
        from repro.telemetry.export import write_jsonl

        return write_jsonl(path, self.iter_dicts())

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SpanTracer(finished={len(self.spans)}, open={len(self._stack)}, "
            f"metrics={self.metrics!r})"
        )


def phases_payload(tracer: SpanTracer) -> dict[str, dict[str, float]]:
    """A JSON-safe per-phase breakdown of a tracer's finished spans.

    One entry per span name: how often the phase ran, its summed
    wall-clock, and its *exclusive* communication bits (so the per-phase
    bits add up to the run total instead of double-counting nested spans;
    the inclusive figure rides along as ``bits_inclusive``).  This is the
    ``phases`` section of both the ``BENCH_<name>.json`` perf reports
    (``benchmarks/conftest.emit_bench_json``) and the per-cell records of
    the sweep harness (:mod:`repro.sweeps`).
    """
    return {
        name: {
            "count": int(row["count"]),
            "wall_s": round(row["wall_s"], 4),
            "bits": int(row["exclusive_bits"]),
            "bits_inclusive": int(row["bits"]),
            "max_node_bits": int(row["max_node_bits"]),
        }
        for name, row in tracer.phase_summary().items()
    }
