"""Charged root fail-over: leader election and tree re-rooting.

Until now the query root was the one node the simulator refused to kill —
real deployments of Patt-Shamir-style aggregate computation must survive
the query node too.  Chlebus–Kowalski–Olkowski ("Deterministic
Fault-Tolerant Distributed Computing in Linear Time and Communication")
make the case that surviving a crash must be paid for in the same
communication currency as the computation itself, and the tree-based
leader elections of the distributed-systems literature (Aspnes's notes,
Ch. 6) give the standard cost shape: candidate ids converge up surviving
structure, the winner floods back down.  :class:`RootElection` implements
that model as a *charged* protocol rather than a free oracle handover.

When the root dies, the old spanning tree decomposes into *surviving
fragments* — maximal connected pieces of tree edges whose endpoints are
alive and whose graph edge still exists.  The election runs over the
*electorate*: the connected component of the alive graph containing the
highest surviving node id, which wins (deterministic, and every node can
verify it locally once the flood reaches it).  Three phases, each billed
message by message through the radio models under the ``faults:election``
ledger key (:attr:`RootElection.protocol`):

1. **candidate convergecast** — within every electorate fragment each
   member forwards the best id it has seen to its surviving parent, one
   :data:`CANDIDATE_BITS` frame per surviving tree edge, in the canonical
   bottom-up order (deepest level first, ascending id within a level);
2. **winner flood** — the fragment tops compete by flooding, and the
   winning announcement crosses every alive graph edge of the electorate
   in both directions: two :data:`WINNER_BITS` tokens per edge, in
   ascending ``(min, max)`` edge order;
3. **re-rooting flips** — the winner claims the root role by reversing
   the parent pointers along the path from itself to its fragment's old
   top, one :data:`REROOT_FLIP_BITS` notification per reversed edge
   (exactly the pointer-flip mechanism the adoption handshake uses).

Like every other protocol in the repository, the election has two
execution paths selected by ``network.execution`` (or pinned via
``RootElection(execution=...)``): the per-edge reference charges each
message through :meth:`~repro.network.SensorNetwork.send`, the batched
path ships the identical link sequence through
:meth:`~repro.network.SensorNetwork.send_batch` — bit-for-bit identical
ledgers, lossy-radio retries included (enforced by the randomized
election-equivalence suite).

:meth:`RootElection.elect` only *decides and charges*: it re-roots the
network's identity (:meth:`~repro.network.SensorNetwork.set_root`) and
returns an :class:`ElectionResult`, leaving the tree untouched.
Installing the re-rooted tree — and re-attaching the fragments that did
not contain the winner — is :class:`~repro.faults.TreeRepair`'s job: a
repair finding a dead root defers to its configured election and then
runs a repair pass *seeded* with the winner's re-rooted fragment, so the
other fragments re-attach as units through ordinary charged adoption
handshakes.  The streaming layer migrates its summary caches along the
reversed root path (:meth:`~repro.streaming.ContinuousQueryEngine.\
apply_root_change`) instead of cold-resyncing the field.

Nodes outside the electorate (alive but cut off from the winner) take no
part and stay detached, exactly like survivors of a partition — they are
re-adopted by a later repair once connectivity returns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork

#: Candidate-id frame forwarded up a surviving fragment during the
#: convergecast phase (type tag + the best node id seen so far).
CANDIDATE_BITS = 32
#: Winner-announcement token flooded over every alive electorate edge.
WINNER_BITS = 16
#: Pointer-flip notification along the winner's reversed root path.
REROOT_FLIP_BITS = 16


@dataclass(frozen=True)
class ElectionResult:
    """What one charged root election decided, and what it cost.

    ``reversed_path`` lists the winner's old ancestor chain inside its
    fragment, winner first; ``flips`` holds the resulting ``(node, new
    parent)`` pointer reversals (one per reversed edge — the winner itself
    simply drops its parent).  ``winner_fragment`` is the sorted member
    list of the winner's surviving fragment: the already-spanned seed the
    follow-up repair grows its adoption cascade from.  ``participants``
    counts the electorate (alive nodes graph-connected to the winner) and
    ``fragments`` its surviving-fragment count.  All cost fields cover the
    election only — the follow-up repair bills separately under its own
    ledger key.
    """

    old_root: int
    new_root: int
    participants: int
    fragments: int
    reversed_path: tuple[int, ...]
    flips: tuple[tuple[int, int], ...]
    winner_fragment: tuple[int, ...]
    election_bits: int
    election_messages: int
    rounds: int


class RootElection:
    """Highest-surviving-id election over the alive component, charged."""

    def __init__(
        self,
        protocol: str = "faults:election",
        execution: str | None = None,
    ) -> None:
        if execution is not None and execution not in ("batched", "per-edge"):
            raise ConfigurationError(
                f"unknown execution mode {execution!r}; known: batched, per-edge"
            )
        #: Ledger key every election message is charged under.
        self.protocol = protocol
        #: ``None`` (default) follows ``network.execution``; an explicit
        #: value pins one charging path, exactly like ``TreeRepair``.
        self.execution = execution

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def elect(self, network: SensorNetwork) -> ElectionResult:
        """Elect the highest surviving id reachable from it; charge the bill.

        Requires the current root to be dead (a live root needs no
        successor).  On return the network's *identity* is re-rooted —
        ``network.root_id`` is the winner, the node flags updated via
        :meth:`~repro.network.SensorNetwork.set_root` — but the spanning
        tree is untouched: the caller (normally
        :meth:`~repro.faults.TreeRepair.repair`) installs the re-rooted
        tree and re-attaches the remaining fragments as one seeded repair
        pass.  Raises :class:`~repro.exceptions.ConfigurationError` when
        no node survives to elect, and propagates
        :class:`~repro.exceptions.DeliveryError` if an election message
        permanently fails (the delivered prefix stays charged, identically
        on both execution paths).
        """
        telemetry = network.telemetry
        with telemetry.span("election") as span:
            result = self._elect_impl(network)
            if telemetry.enabled:
                span.annotate(
                    old_root=result.old_root,
                    new_root=result.new_root,
                    participants=result.participants,
                    fragments=result.fragments,
                )
                telemetry.count("election.runs", 1)
                telemetry.event(
                    "election",
                    node=result.new_root,
                    old_root=result.old_root,
                    new_root=result.new_root,
                    participants=result.participants,
                )
        return result

    def _elect_impl(self, network: SensorNetwork) -> ElectionResult:
        old_root = network.root_id
        if network.is_alive(old_root):
            raise ConfigurationError(
                f"root {old_root} is alive; an election needs a dead root"
            )
        alive = network.alive_node_ids()
        if not alive:
            raise ConfigurationError(
                "no surviving node to elect; the whole field is dead"
            )
        winner = alive[-1]  # ids ascend: the highest surviving id

        # The electorate: alive nodes graph-connected to the winner.  BFS
        # depth doubles as the winner flood's round count.
        adjacency = network.graph._adj
        is_alive = network.is_alive
        depth_from_winner = {winner: 0}
        frontier = [winner]
        flood_rounds = 0
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in depth_from_winner and is_alive(neighbor):
                        depth_from_winner[neighbor] = flood_rounds + 1
                        next_frontier.append(neighbor)
            if next_frontier:
                flood_rounds += 1
            frontier = next_frontier
        electorate = set(depth_from_winner)

        fragments, frag_id = self._surviving_fragments(network, electorate)
        tree = network.tree
        old_parent = tree.parent
        old_depth = tree.depth

        # Phase 1 — candidate convergecast: one frame per surviving tree
        # edge, canonical bottom-up order across all fragments at once.
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        senders = [
            node
            for node in electorate
            if (parent := old_parent.get(node)) is not None
            and parent in electorate
            and parent in adjacency[node]
        ]
        senders.sort(key=lambda node: (-old_depth[node], node))
        for node in senders:
            links.append((node, old_parent[node]))
            sizes.append(CANDIDATE_BITS)
        convergecast_rounds = 0
        for members in fragments:
            if len(members) > 1:
                top_depth = min(old_depth.get(member, 0) for member in members)
                height = max(old_depth.get(member, 0) for member in members)
                convergecast_rounds = max(convergecast_rounds, height - top_depth)

        # Phase 2 — winner flood: both directions of every alive electorate
        # edge, ascending (min, max) edge order.
        for u in sorted(electorate):
            for v in sorted(adjacency[u]):
                if u < v and v in electorate:
                    links.append((u, v))
                    sizes.append(WINNER_BITS)
                    links.append((v, u))
                    sizes.append(WINNER_BITS)

        # Phase 3 — the winner claims the root role: pointer flips up its
        # old ancestor chain inside its own fragment.
        reversed_path = [winner]
        flips: list[tuple[int, int]] = []
        current = winner
        while True:
            parent = old_parent.get(current)
            if (
                parent is None
                or parent not in electorate
                or frag_id.get(parent) != frag_id[winner]
            ):
                break
            links.append((current, parent))
            sizes.append(REROOT_FLIP_BITS)
            flips.append((parent, current))
            reversed_path.append(parent)
            current = parent

        before = network.ledger.counters_snapshot()
        execution = (
            self.execution if self.execution is not None else network.execution
        )
        if links:
            if execution == "per-edge":
                for link, size in zip(links, sizes):
                    network.send(
                        link[0],
                        link[1],
                        ("election", winner),
                        size,
                        protocol=self.protocol,
                        require_edge=False,
                    )
            else:
                network.send_batch(
                    links, sizes, protocol=self.protocol, require_edge=False
                )
        rounds = convergecast_rounds + flood_rounds + len(flips)
        network.ledger.advance_round(rounds)
        after = network.ledger.counters_snapshot()

        network.set_root(winner)
        winner_fragment = sorted(
            member for member, unit in frag_id.items() if unit == frag_id[winner]
        )
        return ElectionResult(
            old_root=old_root,
            new_root=winner,
            participants=len(electorate),
            fragments=len(fragments),
            reversed_path=tuple(reversed_path),
            flips=tuple(flips),
            winner_fragment=tuple(winner_fragment),
            election_bits=after.total_bits - before.total_bits,
            election_messages=after.messages - before.messages,
            rounds=rounds,
        )

    # ------------------------------------------------------------------ #
    # Fragment discovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _surviving_fragments(
        network: SensorNetwork, members: set[int]
    ) -> tuple[list[list[int]], dict[int, int]]:
        """Group ``members`` into maximal fragments of surviving tree edges.

        A surviving tree edge has both endpoints in ``members`` and its
        graph edge intact.  Nodes outside the old tree (alive but detached
        before the crash) come out as singleton fragments.  Returns
        ``(fragments, frag_id)`` with deterministic numbering (fragments
        discovered in ascending smallest-member order).
        """
        tree = network.tree
        parent_of = tree.parent.get
        children_of = tree.children.get
        adjacency = network.graph._adj
        frag_id: dict[int, int] = {}
        fragments: list[list[int]] = []
        for start in sorted(members):
            if start in frag_id:
                continue
            unit = len(fragments)
            frag_id[start] = unit
            queue = [start]
            collected: list[int] = []
            while queue:
                node = queue.pop()
                collected.append(node)
                neighbors = adjacency[node]
                parent = parent_of(node)
                if (
                    parent is not None
                    and parent in members
                    and parent not in frag_id
                    and parent in neighbors
                ):
                    frag_id[parent] = unit
                    queue.append(parent)
                for child in children_of(node, ()):
                    if (
                        child in members
                        and child not in frag_id
                        and child in neighbors
                    ):
                        frag_id[child] = unit
                        queue.append(child)
            fragments.append(collected)
        return fragments, frag_id

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"RootElection(protocol={self.protocol!r}, "
            f"execution={self.execution!r})"
        )
