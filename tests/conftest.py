"""Shared fixtures for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests that need raw randomness."""
    return random.Random(12345)


@pytest.fixture
def small_items() -> list[int]:
    """A small fixed multiset with a known median (42)."""
    return [7, 12, 99, 42, 57, 3, 42, 68, 21]


@pytest.fixture
def small_network(small_items) -> SensorNetwork:
    """A 9-node grid holding :func:`small_items`, one item per node."""
    return SensorNetwork.from_items(small_items, topology=grid_topology(3, 3))


@pytest.fixture
def line_network() -> SensorNetwork:
    """A 16-node line holding the values 0..15."""
    return SensorNetwork.from_items(list(range(16)), topology=line_topology(16))


@pytest.fixture
def medium_items(rng) -> list[int]:
    """100 random values in [0, 10_000], seeded."""
    return [rng.randrange(0, 10_001) for _ in range(100)]


@pytest.fixture
def medium_network(medium_items) -> SensorNetwork:
    """A 10x10 grid holding :func:`medium_items`."""
    return SensorNetwork.from_items(medium_items, topology=grid_topology(10, 10))
