"""Builtin sweep specs: the hand-written studies re-expressed as data.

Each factory returns the :class:`~repro.sweeps.spec.SweepSpec` whose cells
reproduce one of the study runners in :mod:`repro.analysis.experiments`
with identical parameters — ``tests/test_sweeps.py`` asserts that a sweep
cell and the corresponding hand-written call produce the same headline
numbers.  Sizes scale through two environment variables so CI can smoke
the same specs it gates on:

``REPRO_SWEEP_NODES``
    Network size for every builtin spec (default: each study's own
    default — 100 nodes for E10, 400 for E12).
``REPRO_SWEEP_EPOCHS``
    Stream length for the E10 spec (default 30).
"""

from __future__ import annotations

import os

from repro.exceptions import ConfigurationError
from repro.sweeps.spec import Constraint, SweepSpec


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


def e10_streaming_spec(
    num_nodes: int | None = None,
    epochs: int | None = None,
    workloads: tuple = ("drift", "burst"),
    seeds: tuple = (0, 1),
) -> SweepSpec:
    """E10 — the streaming comparison, swept over workload x seed.

    Each cell drives the incremental and recompute engines through one
    identical stream (``run_streaming_comparison``); the headline measure
    is the bits savings factor at the same ε-approximation guarantee.
    """
    return SweepSpec(
        name="e10_streaming",
        experiment="streaming",
        axes={"workload": tuple(workloads), "seed": tuple(seeds)},
        base={
            "n": num_nodes or _env_int("REPRO_SWEEP_NODES", 100),
            "epochs": epochs or _env_int("REPRO_SWEEP_EPOCHS", 30),
            "epsilon": 0.1,
            "topology": "grid",
        },
    )


def e12_fault_tolerance_spec(
    num_nodes: int | None = None,
    epochs: int = 8,
    scenarios: tuple = ("crash_storm", "regional_outage", "link_storm"),
    detector_periods: tuple = (None, 4),
    seeds: tuple = (0,),
) -> SweepSpec:
    """E12 — fault tolerance, swept over scenario x detector period x seed.

    Each cell runs both repair policies (incremental vs rebuild) through
    one fault script (``run_fault_tolerance_study``).  The constraint
    prunes the heartbeat arm of the ``link_storm`` scenario: heartbeats
    detect *node* crashes, while link failures are oracle-detected by the
    sender's missing ack, so a charged detector on a link-only scenario
    measures nothing but its own overhead.
    """
    return SweepSpec(
        name="e12_fault_tolerance",
        experiment="fault_tolerance",
        axes={
            "scenario": tuple(scenarios),
            "detector_period": tuple(detector_periods),
            "seed": tuple(seeds),
        },
        base={
            "n": num_nodes or _env_int("REPRO_SWEEP_NODES", 400),
            "epochs": epochs,
            "crash_fraction": 0.1,
            "epsilon": 0.1,
            "topology": "random_geometric",
        },
        constraints=(
            Constraint(
                when={"scenario": ("link_storm",)},
                require={"detector_period": (None,)},
            ),
        ),
    )


def e14_multitenant_spec(
    num_nodes: int | None = None,
    epochs: int | None = None,
    tenants: tuple = (8, 16, 32),
    seeds: tuple = (0, 1),
) -> SweepSpec:
    """E14 — multi-tenant dedup, swept over tenant count x seed.

    Each cell serves Q overlapping standing queries through one shared
    plan and through Q dedicated engines (``run_multitenant_study``); the
    headline measure is the total-bits savings factor, which grows like
    Q over the number of distinct plan signatures while every tenant's
    answers stay number-identical.
    """
    return SweepSpec(
        name="e14_multitenant",
        experiment="multitenant",
        axes={"tenants": tuple(tenants), "seed": tuple(seeds)},
        base={
            "n": num_nodes or _env_int("REPRO_SWEEP_NODES", 100),
            "epochs": epochs or _env_int("REPRO_SWEEP_EPOCHS", 12),
            "epsilon": 0.1,
            "topology": "grid",
            "workload": "drift",
        },
    )


#: Name -> factory for every spec the CLI and docs gate can resolve.
BUILTIN_SWEEPS = {
    "e10_streaming": e10_streaming_spec,
    "e12_fault_tolerance": e12_fault_tolerance_spec,
    "e14_multitenant": e14_multitenant_spec,
}


def get_sweep(name: str, **overrides) -> SweepSpec:
    """Resolve a builtin sweep spec by name."""
    try:
        factory = BUILTIN_SWEEPS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep {name!r}; builtin: {sorted(BUILTIN_SWEEPS)}"
        ) from None
    return factory(**overrides)
